// Layer/module abstraction with explicit forward/backward and hooks for the
// PTQ pipeline.
//
// Quantization integrates through two seams:
//  * activation quantization: modules flagged as quant points pass their
//    output through Context::quant->on_activation() -- this is where the
//    PTQ harness observes calibration maxima and, at eval time, fake-
//    quantizes every tensor an accelerator would spill to 8-bit memory;
//  * weight quantization: Conv2d/Linear expose per-output-channel weight
//    spans via the ChannelWeights interface (the paper quantizes weights
//    per channel, activations per layer).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace mersit::nn {

class Module;
struct WeightCodes;  // nn/qweights.h — 8-bit code-domain weight view

/// PTQ hook: observes / rewrites activations at quant points.
class QuantSession {
 public:
  virtual ~QuantSession() = default;
  virtual void on_activation(const Module& layer, Tensor& t) = 0;

  /// Input-side hook: called on each batch before it enters the model, so
  /// sessions that quantize network inputs do it on the fly instead of
  /// materializing a quantized copy of the whole dataset.  Default: no-op.
  virtual void on_input(Tensor& t) { (void)t; }

  /// True when on_activation may be invoked concurrently from several
  /// evaluation threads (each on its own tensor).  Sessions that accumulate
  /// unguarded state (calibrators, probes) keep the default false and force
  /// the evaluators into their serial path.
  [[nodiscard]] virtual bool concurrent_safe() const { return false; }
};

struct Context {
  bool train = false;
  QuantSession* quant = nullptr;
};

/// A learnable parameter and its gradient accumulator.
///
/// The version counter stamps the value tensor's mutation history: every
/// seam that rewrites `value` in place (optimizer steps, per-channel weight
/// quantization, restore/unpack, BN folding) calls bump_version(), and
/// derived caches (prepacked GEMM panels, folded-BN weights) record the
/// version they were built from and rebuild on mismatch.  Reads/writes are
/// atomic so concurrent inference threads may validate a cache while a
/// (serial) mutator is absent; mutation itself is never concurrent with
/// forwards.
struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(Tensor v) : value(std::move(v)), grad(value.shape()) {}
  Param() = default;
  // The atomic member deletes the implicit copies; a copied Param is a new
  // storage lineage, so it starts its own version history.
  Param(const Param& other) : value(other.value), grad(other.grad) {}
  Param& operator=(const Param& other) {
    if (this != &other) {
      value = other.value;
      grad = other.grad;
      bump_version();
    }
    return *this;
  }

  void zero_grad() { grad.zero(); }

  /// Current mutation stamp of `value` (starts at 1; never 0, so caches can
  /// use 0 as "never built").
  [[nodiscard]] std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }
  /// Record an in-place mutation of `value`.  Call after the write.
  void bump_version() { version_.fetch_add(1, std::memory_order_acq_rel); }

 private:
  std::atomic<std::uint64_t> version_{1};
};

/// Implemented by modules with per-output-channel quantizable weights.
class ChannelWeights {
 public:
  virtual ~ChannelWeights() = default;
  ChannelWeights() = default;
  // Codes are an immutable shared payload; a copied module (clone, value
  // copy) shares the installed instance — it stays valid for both, and the
  // per-instance id keys each module's own pack cache.
  ChannelWeights(const ChannelWeights& other) : codes_(other.weight_codes()) {}
  ChannelWeights& operator=(const ChannelWeights& other) {
    if (this != &other) set_weight_codes(other.weight_codes());
    return *this;
  }

  [[nodiscard]] virtual int weight_channels() const = 0;
  /// Mutable view of all weights feeding output channel `c`.
  [[nodiscard]] virtual std::span<float> channel_span(int c) = 0;
  /// The Param owning the storage channel_span views into.  Callers that
  /// mutate spans must bump_version() on it afterwards so prepacked-weight
  /// caches notice.
  [[nodiscard]] virtual Param& weight_param() = 0;

  /// Install / replace this module's 8-bit code-domain weights.  The
  /// payload is immutable; swapping in a new instance (new id) is what
  /// invalidates code-domain pack caches — no version bump involved, so a
  /// racing forward either keeps the complete old view or picks up the
  /// complete new one.
  void set_weight_codes(std::shared_ptr<const WeightCodes> codes) {
    const std::lock_guard<std::mutex> lock(codes_mu_);
    codes_ = std::move(codes);
  }
  void clear_weight_codes() { set_weight_codes(nullptr); }
  /// Snapshot of the installed codes (null when running pure FP32).
  [[nodiscard]] std::shared_ptr<const WeightCodes> weight_codes() const {
    const std::lock_guard<std::mutex> lock(codes_mu_);
    return codes_;
  }

 private:
  mutable std::mutex codes_mu_;
  std::shared_ptr<const WeightCodes> codes_;
};

class Module;
using ModulePtr = std::unique_ptr<Module>;

/// One direct child of a container module, with its structural name (the
/// path segment this child contributes, e.g. "body", "fc1", "stage1_block0").
struct NamedChild {
  std::string name;
  Module* module = nullptr;
};

class Module {
 public:
  virtual ~Module() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Compute the output; caches whatever backward() needs when ctx.train.
  virtual Tensor forward(const Tensor& x, const Context& ctx) = 0;
  /// Propagate gradients; accumulates into Param::grad, returns dL/dx.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Append this module's parameters.
  virtual void collect_params(std::vector<Param*>& out) { (void)out; }

  /// Append the direct children with their structural names, in execution
  /// order.  Leaf modules have none; containers override.  This single seam
  /// drives both the pointer traversal (collect_modules) and the named-path
  /// traversal (named_modules / assign_paths), so the two can never drift
  /// out of order.
  virtual void collect_children(std::vector<NamedChild>& out) { (void)out; }

  /// Pre-order traversal including `this` and all children.
  void collect_modules(std::vector<Module*>& out) {
    out.push_back(this);
    std::vector<NamedChild> ch;
    collect_children(ch);
    for (const NamedChild& c : ch) c.module->collect_modules(out);
  }

  /// Structural deep copy: same architecture, same parameter values and
  /// buffers (BN running stats, folded flags) and the same assigned paths,
  /// but no shared storage — a trained model can be replicated per thread
  /// for concurrent serving.  Transient forward/backward caches need not
  /// survive the copy.
  [[nodiscard]] virtual ModulePtr clone() const = 0;

  /// True when the output tensor would be spilled to (8-bit) memory.
  [[nodiscard]] virtual bool quant_point() const { return false; }

  /// Stable hierarchical path of this module within its tree (e.g.
  /// "resnet18/stage1_block0/residual/body/conv1").  Empty until
  /// assign_paths() runs on the root; the model factories assign paths
  /// before returning.
  [[nodiscard]] const std::string& path() const { return path_; }
  void set_path(std::string p) { path_ = std::move(p); }

  /// forward() plus the activation-quantization hook.
  Tensor run(const Tensor& x, const Context& ctx) {
    Tensor y = forward(x, ctx);
    if (ctx.quant != nullptr && quant_point()) ctx.quant->on_activation(*this, y);
    return y;
  }

  [[nodiscard]] std::vector<Param*> parameters() {
    std::vector<Param*> p;
    collect_params(p);
    return p;
  }
  [[nodiscard]] std::vector<Module*> modules() {
    std::vector<Module*> m;
    collect_modules(m);
    return m;
  }
  void zero_grad() {
    for (Param* p : parameters()) p->zero_grad();
  }

 private:
  std::string path_;
};

/// A module and its full path, as produced by named_modules().
struct NamedModuleRef {
  std::string path;
  Module* module = nullptr;
};

/// Pre-order walk of the tree rooted at `root` with the path each module
/// would carry under `root_name` (same order as collect_modules).  Paths
/// join child names with '/'; the root's path is `root_name` itself.
[[nodiscard]] std::vector<NamedModuleRef> named_modules(Module& root,
                                                        const std::string& root_name);

/// Walk the tree and store each module's path (see Module::path()).
/// Throws std::logic_error if two modules would share a path — structural
/// names must be unique among siblings.
void assign_paths(Module& root, const std::string& root_name);

}  // namespace mersit::nn
