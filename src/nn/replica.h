// Replica pool: N structural clones of one prototype model, each with its
// own exclusive lease, built on Module::clone().
//
// Why clones and not a shared model: eval-mode forward is re-entrant, but
// artifact hot-swap is not — unpack_weights rewrites every weight tensor in
// place, which must never race a forward on the same storage.  Giving each
// replica its own parameter storage (and therefore its own prepacked-GEMM
// caches, which rebuild per replica via the Param version counters) turns
// "swap under live traffic" into a per-replica critical section instead of
// a global quiesce: replica i swaps while replicas j != i keep serving.
//
// The pool hands out replicas through RAII leases on a per-replica mutex.
// Serving workers hold the lease for the duration of one micro-batch
// forward; the swap path walks all replicas with for_each_exclusive,
// taking each lease in turn.  Every forward thus runs entirely under one
// artifact generation — old or new, never a mix.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "nn/module.h"

namespace mersit::nn {

class ReplicaPool {
 public:
  /// Clone `proto` `count` times (count >= 1; throws std::invalid_argument
  /// otherwise).  The prototype itself is not retained.
  ReplicaPool(const Module& proto, int count);

  ReplicaPool(const ReplicaPool&) = delete;
  ReplicaPool& operator=(const ReplicaPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(replicas_.size()); }

  /// Exclusive access to one replica; the mutex is held for the lease's
  /// lifetime.  Move-only.
  class Lease {
   public:
    Lease(Lease&&) = default;
    Lease& operator=(Lease&&) = default;

    [[nodiscard]] Module& module() { return *module_; }
    [[nodiscard]] int index() const { return index_; }

   private:
    friend class ReplicaPool;
    Lease(std::unique_lock<std::mutex> lock, Module* module, int index)
        : lock_(std::move(lock)), module_(module), index_(index) {}

    std::unique_lock<std::mutex> lock_;
    Module* module_;
    int index_;
  };

  /// Block until replica `i` is free and lease it.
  [[nodiscard]] Lease acquire(int i);

  /// Visit every replica in turn under its lease — the hot-swap walk.  `fn`
  /// is fn(Module&, int index); at most one replica is locked at a time, so
  /// the other replicas keep serving while one is being mutated.
  template <typename Fn>
  void for_each_exclusive(Fn&& fn) {
    for (int i = 0; i < size(); ++i) {
      Lease lease = acquire(i);
      fn(lease.module(), i);
    }
  }

 private:
  struct Replica {
    ModulePtr module;
    std::mutex mu;
  };

  std::vector<std::unique_ptr<Replica>> replicas_;
};

}  // namespace mersit::nn
