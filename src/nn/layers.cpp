#include "nn/layers.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/scratch_arena.h"
#include "core/thread_pool.h"
#include "nn/gemm/backend.h"
#include "nn/gemm/gemm.h"
#include "nn/gemm/im2col.h"
#include "nn/gemm/qgemm.h"
#include "nn/qweights.h"

namespace mersit::nn {

namespace {

float sigmoidf(float x) { return 1.f / (1.f + std::exp(-x)); }

/// Weight prepacking is value-preserving (the cached panels are
/// byte-identical to per-call packs), so it stays on under quant sessions —
/// that is what accelerates the PTQ sweeps.  Only training (weights move
/// every step) opts out.
bool use_prepack(const Context& ctx) {
  return gemm::prepack_enabled() && !ctx.train;
}

/// The installed code-domain weights, when the layer should run from them:
/// inference only and MERSIT_QGEMM != float.  The snapshot is taken once
/// per forward; everything derived (decoded floats, packs, the cache
/// identity) comes from this one instance, so a concurrent swap can only
/// yield a fully-old or fully-new view, never a mix.
std::shared_ptr<const WeightCodes> active_codes(const ChannelWeights& cw,
                                                const Context& ctx) {
  if (ctx.train || gemm::qgemm_mode() == gemm::QgemmMode::kFloat)
    return nullptr;
  return cw.weight_codes();
}

void check_codes(const WeightCodes& wc, int channels, int per_channel,
                 const char* who) {
  if (wc.channels != channels || wc.per_channel != per_channel ||
      wc.codes.size() != static_cast<std::size_t>(channels) * per_channel ||
      wc.scales.size() != static_cast<std::size_t>(channels))
    throw std::invalid_argument(std::string(who) +
                                ": weight codes do not match the layer shape");
}

/// Cache identity of the float-weight path: just the active GEMM backend's
/// id (< 16), so switching MERSIT_BACKEND rebuilds the entry instead of
/// serving a foreign-layout pack (sgemm would reject it loudly).
std::uint64_t float_pack_identity() {
  return static_cast<std::uint64_t>(gemm::active_backend().id);
}

/// Cache identity of a code-domain entry: the process-unique WeightCodes id
/// shifted past a two-bit entry kind (1 = code packs, 2 = int8 level packs
/// — the two builds share a Param version, so the kind must be part of the
/// key or a mode flip between code and int8 could serve the wrong panels),
/// a want-packs bit (so toggling MERSIT_PREPACK rebuilds the entry
/// with/without panels instead of serving a packless one forever), and four
/// backend-id bits for the same foreign-layout reason as
/// float_pack_identity.  Never collides with the float path's identities
/// (< 16): the kind bits make these always >= 32.
std::uint64_t codes_identity(const WeightCodes& wc, bool want_packs) {
  return (wc.id << 7) | (std::uint64_t{1} << 5) |
         (static_cast<std::uint64_t>(want_packs) << 4) | float_pack_identity();
}

/// Cache identity of an int8-path entry (kind 2; see codes_identity).
std::uint64_t int8_identity(const WeightCodes& wc, bool want_packs) {
  return (wc.id << 7) | (std::uint64_t{2} << 5) |
         (static_cast<std::uint64_t>(want_packs) << 4) | float_pack_identity();
}

/// Kulisch eligibility for one forward: opt-in mode, exact table available,
/// an encode hook to recover activation codes, a stamped activation scale,
/// and no non-finite weight codes (their products are undefined in fixed
/// point).  Anything missing falls back to code mode, which is
/// bit-identical to the FP32 default anyway.
bool kulisch_ok(const WeightCodes& wc, const Tensor& x) {
  return gemm::qgemm_mode() == gemm::QgemmMode::kKulisch &&
         wc.kulisch != nullptr && wc.kulisch->usable && wc.encode != nullptr &&
         wc.nonfinite == 0 && x.quant_scale() > 0.0 && gemm::enabled();
}

/// Int8 eligibility for one forward: opt-in mode, an exactly affine decode
/// LUT, a stamped activation scale to quantize against, and no non-finite
/// weight codes (a NaR level has no integer value).  Callers additionally
/// bound K ≤ gemm::kInt8MaxK (exact int32 accumulation).  Anything missing
/// falls back to code mode, silently — same contract as Kulisch fallback.
bool int8_ok(const WeightCodes& wc, const Tensor& x) {
  return gemm::qgemm_mode() == gemm::QgemmMode::kInt8 &&
         wc.affine != nullptr && wc.affine->usable && wc.nonfinite == 0 &&
         x.quant_scale() > 0.0 && gemm::enabled();
}

/// The fused-epilogue equivalent of an Act kind, or kNone when the kind has
/// no epilogue (sigmoid/tanh never directly follow a conv/linear here).
gemm::Epilogue epilogue_for(Act a) {
  switch (a) {
    case Act::kReLU: return gemm::Epilogue::kReLU;
    case Act::kReLU6: return gemm::Epilogue::kReLU6;
    case Act::kSiLU: return gemm::Epilogue::kSiLU;
    case Act::kHardSwish: return gemm::Epilogue::kHardSwish;
    case Act::kGELU: return gemm::Epilogue::kGELU;
    default: return gemm::Epilogue::kNone;
  }
}

}  // namespace

bool fuse_inference_ok(const Context& ctx) {
  return !ctx.train && ctx.quant == nullptr && gemm::enabled() &&
         gemm::prepack_enabled();
}

// ---------------------------------------------------------------- Linear ---

Linear::Linear(int in, int out, std::mt19937& rng)
    : weight(Tensor::randn({out, in}, rng, std::sqrt(2.f / static_cast<float>(in)))),
      bias(Tensor::zeros({out})),
      in_(in),
      out_(out) {}

void Linear::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight);
  out.push_back(&bias);
}

std::span<float> Linear::channel_span(int c) {
  return weight.value.data().subspan(static_cast<std::size_t>(c) * static_cast<std::size_t>(in_),
                                     static_cast<std::size_t>(in_));
}

Tensor Linear::forward(const Tensor& x, const Context& ctx) {
  return forward_fused(x, ctx, gemm::Epilogue::kNone);
}

Tensor Linear::forward_fused(const Tensor& x, const Context& ctx,
                             gemm::Epilogue epi) {
  const int n = x.dim(0);
  if (x.dim(1) != in_) throw std::invalid_argument("Linear: width mismatch");
  if (const auto wc = active_codes(*this, ctx); wc != nullptr)
    return forward_codes(x, ctx, wc, epi);
  Tensor y({n, out_});
  if (gemm::enabled()) {
    const gemm::PackedMatrix* pb = nullptr;
    if (use_prepack(ctx)) {
      const PackedWeights& cached = packs_.get(weight, float_pack_identity(), [&] {
        PackedWeights pw;
        pw.packs.push_back(gemm::pack_b_matrix(in_, out_, weight.value.raw(),
                                               in_, /*trans_b=*/true));
        return pw;
      });
      pb = cached.packs.data();
    }
    // y = x · Wᵀ + b; bias-first then ascending-k accumulation matches the
    // naive loop's rounding sequence exactly.
    gemm::sgemm(n, out_, in_, x.raw(), in_, /*trans_a=*/false,
                weight.value.raw(), in_, /*trans_b=*/true, y.raw(), out_,
                gemm::Init::kBiasCol, bias.value.raw(), nullptr, epi, nullptr,
                pb);
  } else {
    for (int i = 0; i < n; ++i) {
      const float* xi = x.raw() + static_cast<std::ptrdiff_t>(i) * in_;
      for (int o = 0; o < out_; ++o) {
        const float* w = weight.value.raw() + static_cast<std::ptrdiff_t>(o) * in_;
        float acc = bias.value[o];
        for (int j = 0; j < in_; ++j) acc += w[j] * xi[j];
        y.at(i, o) = gemm::epilogue_eval(epi, acc);
      }
    }
  }
  if (ctx.train) x_cache_ = x;
  return y;
}

Tensor Linear::forward_codes(const Tensor& x, const Context& ctx,
                             const std::shared_ptr<const WeightCodes>& wc,
                             gemm::Epilogue epi) {
  const int n = x.dim(0);
  check_codes(*wc, out_, in_, "Linear");
  if (kulisch_ok(*wc, x)) {
    // Exact path: recover the activation codes by re-encoding the already
    // fake-quantized values at their stamped scale (encode(v / scale) is
    // idempotent on decoded values), then run weight codes × activation
    // codes through the software quire.
    const double xscale = x.quant_scale();
    const double xinv = 1.0 / xscale;
    std::vector<std::uint8_t> xcodes(static_cast<std::size_t>(n) * in_);
    const float* xd = x.raw();
    for (std::size_t i = 0; i < xcodes.size(); ++i)
      xcodes[i] = wc->encode(static_cast<double>(xd[i]) * xinv);
    Tensor y({n, out_});
    const gemm::QOperand a{xcodes.data(), in_, /*trans=*/false, nullptr, xscale};
    const gemm::QOperand b{wc->codes.data(), in_, /*trans=*/true,
                           wc->scales.data(), 0.0};
    gemm::qgemm_kulisch(n, out_, in_, a, b, *wc->kulisch,
                        gemm::Init::kBiasCol, bias.value.raw(), y.raw(), out_,
                        epi);
    return y;
  }
  if (int8_ok(*wc, x) && in_ <= gemm::kInt8MaxK) {
    // Decode-free path: weight codes remap to int8 levels in the pack step,
    // activations quantize straight to the same level grid at the GEMM
    // boundary (exact on already-fake-quantized values), and the kernel
    // accumulates level products in int32 — both operands move as 8-bit
    // codes and the only float math is the dequant write-back.
    const gemm::AffineLut& alut = *wc->affine;
    const double xscale = x.quant_scale();
    const bool want_packs = use_prepack(ctx);
    const PackedWeights& cached =
        packs_.get(weight, int8_identity(*wc, want_packs), [&] {
          PackedWeights pw;
          pw.iscales.resize(wc->scales.size());
          for (std::size_t o = 0; o < wc->scales.size(); ++o)
            pw.iscales[o] = alut.scale * wc->scales[o];
          if (want_packs)
            pw.ipacks.push_back(gemm::pack_b_int8_matrix(
                in_, out_, wc->codes.data(), in_, /*trans_b=*/true, alut.q));
          return pw;
        });
    Tensor y({n, out_});
    // Activations ride as a float-source operand: the backend pack fuses the
    // level quantization into the panel distribution (bit-identical to a
    // separate quantize_levels pass, no intermediate buffer).
    gemm::Int8Operand a;
    a.ld = in_;
    a.uniform_scale = alut.scale * xscale;
    a.fsrc = x.raw();
    a.finv = 1.0 / (alut.scale * xscale);
    a.flo = alut.qmin;
    a.fhi = alut.qmax;
    const gemm::Int8Operand b{wc->codes.data(), in_, /*trans=*/true, alut.q,
                              cached.iscales.data(), 0.0};
    gemm::qgemm_int8(n, out_, in_, a, b, gemm::Init::kBiasCol,
                     bias.value.raw(), y.raw(), out_, nullptr, epi, nullptr,
                     cached.ipacks.empty() ? nullptr : cached.ipacks.data());
    return y;
  }
  // Code mode: the GEMM operand is packed straight from the codes; the
  // decoded FP32 array serves the paths that read raw float pointers and is
  // bit-identical to the quantize→dequantize weights, so outputs match the
  // float-path quantized forward exactly.
  const bool want_packs = gemm::enabled() && use_prepack(ctx);
  const PackedWeights& cached =
      packs_.get(weight, codes_identity(*wc, want_packs), [&] {
        PackedWeights pw;
        pw.decoded.resize(wc->codes.size());
        gemm::decode_codes(wc->codes.data(), wc->codes.size(), wc->lut,
                           wc->scales.data(), static_cast<std::size_t>(in_),
                           pw.decoded.data());
        if (want_packs)
          pw.packs.push_back(gemm::pack_b_codes(in_, out_, wc->codes.data(),
                                                in_, /*trans_b=*/true, wc->lut,
                                                wc->scales.data()));
        return pw;
      });
  const float* w = cached.decoded.data();
  Tensor y({n, out_});
  if (gemm::enabled()) {
    gemm::sgemm(n, out_, in_, x.raw(), in_, /*trans_a=*/false, w, in_,
                /*trans_b=*/true, y.raw(), out_, gemm::Init::kBiasCol,
                bias.value.raw(), nullptr, epi, nullptr,
                cached.packs.empty() ? nullptr : cached.packs.data());
  } else {
    for (int i = 0; i < n; ++i) {
      const float* xi = x.raw() + static_cast<std::ptrdiff_t>(i) * in_;
      for (int o = 0; o < out_; ++o) {
        const float* wo = w + static_cast<std::ptrdiff_t>(o) * in_;
        float acc = bias.value[o];
        for (int j = 0; j < in_; ++j) acc += wo[j] * xi[j];
        y.at(i, o) = gemm::epilogue_eval(epi, acc);
      }
    }
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  const Tensor& x = x_cache_;
  const int n = x.dim(0);
  Tensor dx({n, in_});
  if (gemm::enabled()) {
    // dx = g · W;  dW += gᵀ · x;  db += column sums of g.
    gemm::sgemm(n, in_, out_, grad_out.raw(), out_, /*trans_a=*/false,
                weight.value.raw(), in_, /*trans_b=*/false, dx.raw(), in_);
    gemm::sgemm(out_, in_, n, grad_out.raw(), out_, /*trans_a=*/true, x.raw(),
                in_, /*trans_b=*/false, weight.grad.raw(), in_,
                gemm::Init::kAccumulate);
    for (int o = 0; o < out_; ++o) {
      float s = bias.grad[o];
      for (int i = 0; i < n; ++i) s += grad_out[static_cast<std::int64_t>(i) * out_ + o];
      bias.grad[o] = s;
    }
  } else {
    for (int i = 0; i < n; ++i) {
      const float* xi = x.raw() + static_cast<std::ptrdiff_t>(i) * in_;
      float* dxi = dx.raw() + static_cast<std::ptrdiff_t>(i) * in_;
      for (int o = 0; o < out_; ++o) {
        const float g = grad_out.at(i, o);
        const float* w = weight.value.raw() + static_cast<std::ptrdiff_t>(o) * in_;
        float* dw = weight.grad.raw() + static_cast<std::ptrdiff_t>(o) * in_;
        bias.grad[o] += g;
        for (int j = 0; j < in_; ++j) {
          dw[j] += g * xi[j];
          dxi[j] += g * w[j];
        }
      }
    }
  }
  return dx;
}

// ---------------------------------------------------------------- Conv2d ---

Conv2d::Conv2d(int in_ch, int out_ch, int ksize, int stride, int pad, int groups,
               std::mt19937& rng)
    : weight(Tensor::randn(
          {out_ch, in_ch / groups, ksize, ksize}, rng,
          std::sqrt(2.f / static_cast<float>((in_ch / groups) * ksize * ksize)))),
      bias(Tensor::zeros({out_ch})),
      in_ch_(in_ch),
      out_ch_(out_ch),
      k_(ksize),
      stride_(stride),
      pad_(pad),
      groups_(groups) {
  if (in_ch % groups != 0 || out_ch % groups != 0)
    throw std::invalid_argument("Conv2d: groups must divide channel counts");
}

void Conv2d::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight);
  out.push_back(&bias);
}

std::span<float> Conv2d::channel_span(int c) {
  const std::size_t per = static_cast<std::size_t>(in_ch_ / groups_) *
                          static_cast<std::size_t>(k_) * static_cast<std::size_t>(k_);
  return weight.value.data().subspan(static_cast<std::size_t>(c) * per, per);
}

namespace {

/// Static geometry of one conv application, shared by the GEMM-lowered
/// forward and backward.
struct ConvGeom {
  int n, in_ch, out_ch, h, w, oh, ow, k, stride, pad, groups, icg, ocg;
  [[nodiscard]] int osz() const { return oh * ow; }
  [[nodiscard]] int kdim() const { return icg * k * k; }
  /// 1x1/stride-1/no-pad convs read the input slab as the column buffer
  /// directly — no im2col copy.
  [[nodiscard]] bool unit() const { return k == 1 && stride == 1 && pad == 0; }
  [[nodiscard]] bool depthwise() const { return icg == 1 && ocg == 1; }
};

/// Depthwise forward: kernel-taps-outer / output-x-inner direct loops.  The
/// inner j loop is contiguous (vectorizable at stride 1) and the per-output
/// accumulation order — bias, then (ki, kj) ascending with out-of-bounds
/// taps skipped — is exactly the naive loop's, so results are bit-identical.
void conv_forward_depthwise(const ConvGeom& g, const float* xb, const float* wt,
                            const float* bias, float* yb) {
  const int kk = g.k * g.k;
  for (int c = 0; c < g.out_ch; ++c) {
    const float* plane = xb + static_cast<std::size_t>(c) * g.h * g.w;
    const float* wk = wt + static_cast<std::size_t>(c) * kk;
    float* yp = yb + static_cast<std::size_t>(c) * g.osz();
    for (int i = 0; i < g.oh; ++i) {
      float* yrow = yp + static_cast<std::size_t>(i) * g.ow;
      const float b0 = bias[c];
      for (int j = 0; j < g.ow; ++j) yrow[j] = b0;
      for (int ki = 0; ki < g.k; ++ki) {
        const int yi = i * g.stride + ki - g.pad;
        if (yi < 0 || yi >= g.h) continue;
        const float* xrow = plane + static_cast<std::size_t>(yi) * g.w;
        for (int kj = 0; kj < g.k; ++kj) {
          const int lo = g.pad - kj;
          const int jb = lo > 0 ? (lo + g.stride - 1) / g.stride : 0;
          const int hi = g.w - 1 + g.pad - kj;
          const int je = hi < 0 ? 0 : std::min(g.ow, hi / g.stride + 1);
          const float wv = wk[ki * g.k + kj];
          const float* src = xrow + kj - g.pad;
          for (int j = jb; j < je; ++j) yrow[j] += wv * src[j * g.stride];
        }
      }
    }
  }
}

/// One sample's grouped-conv forward as per-group GEMMs over an im2col
/// buffer (`col` is caller-provided scratch of kdim x osz floats, unused
/// for unit convs).  `packs`, when non-null, holds one prepacked A operand
/// per group; `epi` fuses a following activation into the write-back, and
/// `bn_scale`/`bn_shift` (out_ch entries) fuse a following inference BN as
/// the per-channel affine applied before `epi`.
void conv_forward_sample(const ConvGeom& g, const float* xb, const float* wt,
                         const float* bias, float* yb, float* col,
                         const gemm::PackedMatrix* packs, gemm::Epilogue epi,
                         const float* bn_scale, const float* bn_shift) {
  for (int grp = 0; grp < g.groups; ++grp) {
    const float* src = xb + static_cast<std::size_t>(grp) * g.icg * g.h * g.w;
    const float* colp = src;
    if (!g.unit()) {
      gemm::im2col(src, g.icg, g.h, g.w, g.k, g.stride, g.pad, col);
      colp = col;
    }
    gemm::RowAffine aff;
    if (bn_scale != nullptr) {
      aff.scale = bn_scale + static_cast<std::size_t>(grp) * g.ocg;
      aff.shift = bn_shift + static_cast<std::size_t>(grp) * g.ocg;
    }
    gemm::sgemm(g.ocg, g.osz(), g.kdim(),
                wt + static_cast<std::size_t>(grp) * g.ocg * g.kdim(), g.kdim(),
                /*trans_a=*/false, colp, g.osz(), /*trans_b=*/false,
                yb + static_cast<std::size_t>(grp) * g.ocg * g.osz(), g.osz(),
                gemm::Init::kBiasRow, bias + static_cast<std::size_t>(grp) * g.ocg,
                nullptr, epi, packs != nullptr ? &packs[grp] : nullptr, nullptr,
                bn_scale != nullptr ? &aff : nullptr);
  }
}

/// Per-group A-operand packs of a conv weight array ([groups x ocg x kdim]).
std::vector<gemm::PackedMatrix> pack_conv_weights(const float* wt, int groups,
                                                  int ocg, int kdim) {
  std::vector<gemm::PackedMatrix> packs;
  packs.reserve(static_cast<std::size_t>(groups));
  for (int grp = 0; grp < groups; ++grp)
    packs.push_back(gemm::pack_a_matrix(
        ocg, kdim, wt + static_cast<std::size_t>(grp) * ocg * kdim, kdim,
        /*trans_a=*/false));
  return packs;
}

}  // namespace

Tensor Conv2d::forward(const Tensor& x, const Context& ctx) {
  return forward_fused(x, ctx, gemm::Epilogue::kNone);
}

Tensor Conv2d::forward_fused(const Tensor& x, const Context& ctx,
                             gemm::Epilogue epi) {
  if (const auto wc = active_codes(*this, ctx); wc != nullptr)
    return forward_codes(x, ctx, wc, epi);
  const gemm::PackedMatrix* packs = nullptr;
  const bool depthwise = in_ch_ == groups_ && out_ch_ == groups_;
  if (gemm::enabled() && !depthwise && use_prepack(ctx)) {
    const int icg = in_ch_ / groups_;
    const int kdim = icg * k_ * k_;
    const int ocg = out_ch_ / groups_;
    const PackedWeights& cached = packs_.get(weight, float_pack_identity(), [&] {
      PackedWeights pw;
      pw.packs = pack_conv_weights(weight.value.raw(), groups_, ocg, kdim);
      return pw;
    });
    packs = cached.packs.data();
  }
  return run_conv(x, ctx, weight.value.raw(), bias.value.raw(), packs, epi);
}

Tensor Conv2d::forward_bn_fused(const Tensor& x, const Context& ctx,
                                const BatchNorm2d& bn, gemm::Epilogue epi) {
  if (bn.folded())
    throw std::logic_error("Conv2d::forward_bn_fused: BN already folded");
  if (bn.channels() != out_ch_)
    throw std::invalid_argument("Conv2d::forward_bn_fused: channel mismatch");
  // The exact per-channel coefficients BatchNorm2d::forward evaluates in
  // inference mode — same expressions, so scale*v + shift reproduces the
  // module pass bit for bit.  Recomputed per forward like the module does;
  // out_ch scalars, negligible next to the GEMM.
  std::vector<float> sc(static_cast<std::size_t>(out_ch_));
  std::vector<float> sh(static_cast<std::size_t>(out_ch_));
  for (int c = 0; c < out_ch_; ++c) {
    const float inv = 1.f / std::sqrt(bn.running_var[c] + bn.eps());
    const float scale = bn.gamma.value[c] * inv;
    sc[static_cast<std::size_t>(c)] = scale;
    sh[static_cast<std::size_t>(c)] =
        bn.beta.value[c] - bn.running_mean[c] * scale;
  }
  if (const auto wc = active_codes(*this, ctx); wc != nullptr)
    return forward_codes(x, ctx, wc, epi, sc.data(), sh.data());
  const gemm::PackedMatrix* packs = nullptr;
  const bool depthwise = in_ch_ == groups_ && out_ch_ == groups_;
  if (gemm::enabled() && !depthwise && use_prepack(ctx)) {
    const int icg = in_ch_ / groups_;
    const int kdim = icg * k_ * k_;
    const int ocg = out_ch_ / groups_;
    const PackedWeights& cached = packs_.get(weight, float_pack_identity(), [&] {
      PackedWeights pw;
      pw.packs = pack_conv_weights(weight.value.raw(), groups_, ocg, kdim);
      return pw;
    });
    packs = cached.packs.data();
  }
  return run_conv(x, ctx, weight.value.raw(), bias.value.raw(), packs, epi,
                  sc.data(), sh.data());
}

Tensor Conv2d::forward_folded(const Tensor& x, const Context& ctx,
                              const BatchNorm2d& bn, gemm::Epilogue epi) {
  if (bn.folded()) throw std::logic_error("Conv2d::forward_folded: BN already folded");
  if (bn.channels() != out_ch_)
    throw std::invalid_argument("Conv2d::forward_folded: channel mismatch");
  // Code-domain weights are immutable — there is nothing to fold the BN
  // into.  The affine write-back path computes the identical conv→BN
  // result from the codes (bit-identical, where folding is only
  // tolerance-equal), so delegate.
  if (active_codes(*this, ctx) != nullptr)
    return forward_bn_fused(x, ctx, bn, epi);
  const std::uint64_t wv = weight.version(), bv = bias.version(),
                      gv = bn.gamma.version(), bev = bn.beta.version();
  const std::uint64_t bk = static_cast<std::uint64_t>(gemm::active_backend().id);
  {
    const std::lock_guard<std::mutex> lock(fold_.mu);
    if (fold_.wv != wv || fold_.bv != bv || fold_.gv != gv ||
        fold_.bev != bev || fold_.bk != bk) {
      const std::size_t per = static_cast<std::size_t>(in_ch_ / groups_) * k_ * k_;
      fold_.w.assign(weight.value.raw(),
                     weight.value.raw() + static_cast<std::size_t>(out_ch_) * per);
      fold_.b.assign(bias.value.raw(), bias.value.raw() + out_ch_);
      for (int o = 0; o < out_ch_; ++o) {
        const float inv = 1.f / std::sqrt(bn.running_var[o] + bn.eps());
        const float scale = bn.gamma.value[o] * inv;
        float* wo = fold_.w.data() + static_cast<std::size_t>(o) * per;
        for (std::size_t i = 0; i < per; ++i) wo[i] *= scale;
        fold_.b[o] = (fold_.b[o] - bn.running_mean[o]) * scale + bn.beta.value[o];
      }
      fold_.packs.clear();
      const bool depthwise = in_ch_ == groups_ && out_ch_ == groups_;
      if (gemm::enabled() && !depthwise) {
        const int icg = in_ch_ / groups_;
        fold_.packs = pack_conv_weights(fold_.w.data(), groups_,
                                        out_ch_ / groups_, icg * k_ * k_);
      }
      fold_.wv = wv;
      fold_.bv = bv;
      fold_.gv = gv;
      fold_.bev = bev;
      fold_.bk = bk;
    }
  }
  return run_conv(x, ctx, fold_.w.data(), fold_.b.data(),
                  fold_.packs.empty() ? nullptr : fold_.packs.data(), epi);
}

Tensor Conv2d::forward_codes(const Tensor& x, const Context& ctx,
                             const std::shared_ptr<const WeightCodes>& wc,
                             gemm::Epilogue epi, const float* bn_scale,
                             const float* bn_shift) {
  const int icg = in_ch_ / groups_;
  const int kdim = icg * k_ * k_;
  const int ocg = out_ch_ / groups_;
  check_codes(*wc, out_ch_, kdim, "Conv2d");
  const bool depthwise = in_ch_ == groups_ && out_ch_ == groups_;
  if (bn_scale == nullptr && !depthwise && kulisch_ok(*wc, x))
    return run_conv_kulisch(x, *wc, epi);
  if (!depthwise && int8_ok(*wc, x) && kdim <= gemm::kInt8MaxK) {
    // Decode-free path (see Linear::forward_codes).  A fused inference BN
    // rides the RowAffine write-back, identical to run_conv's fold, so the
    // Sequential fusion scan needs no special case.  Depthwise stays on the
    // direct float loops (no GEMM to run in the level domain).
    const gemm::AffineLut& alut = *wc->affine;
    const bool want_packs = use_prepack(ctx);
    const PackedWeights& cached =
        packs_.get(weight, int8_identity(*wc, want_packs), [&] {
          PackedWeights pw;
          pw.iscales.resize(wc->scales.size());
          for (std::size_t o = 0; o < wc->scales.size(); ++o)
            pw.iscales[o] = alut.scale * wc->scales[o];
          if (want_packs) {
            pw.ipacks.reserve(static_cast<std::size_t>(groups_));
            for (int grp = 0; grp < groups_; ++grp)
              pw.ipacks.push_back(gemm::pack_a_int8_matrix(
                  ocg, kdim,
                  wc->codes.data() + static_cast<std::size_t>(grp) * ocg * kdim,
                  kdim, /*trans_a=*/false, alut.q));
          }
          return pw;
        });
    return run_conv_int8(x, *wc, cached, epi, bn_scale, bn_shift);
  }
  // Code mode: packs come straight from the codes; the decoded FP32 array
  // (bit-identical to quantize→dequantize) feeds the depthwise/naive loops
  // and the small-problem direct GEMM.
  const bool want_packs = gemm::enabled() && !depthwise && use_prepack(ctx);
  const PackedWeights& cached =
      packs_.get(weight, codes_identity(*wc, want_packs), [&] {
        PackedWeights pw;
        pw.decoded.resize(wc->codes.size());
        gemm::decode_codes(wc->codes.data(), wc->codes.size(), wc->lut,
                           wc->scales.data(), static_cast<std::size_t>(kdim),
                           pw.decoded.data());
        if (want_packs) {
          pw.packs.reserve(static_cast<std::size_t>(groups_));
          for (int grp = 0; grp < groups_; ++grp)
            pw.packs.push_back(gemm::pack_a_codes(
                ocg, kdim,
                wc->codes.data() + static_cast<std::size_t>(grp) * ocg * kdim,
                kdim, /*trans_a=*/false, wc->lut,
                wc->scales.data() + static_cast<std::size_t>(grp) * ocg));
        }
        return pw;
      });
  return run_conv(x, ctx, cached.decoded.data(), bias.value.raw(),
                  cached.packs.empty() ? nullptr : cached.packs.data(), epi,
                  bn_scale, bn_shift);
}

Tensor Conv2d::run_conv_kulisch(const Tensor& x, const WeightCodes& wc,
                                gemm::Epilogue epi) {
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  if (x.dim(1) != in_ch_) throw std::invalid_argument("Conv2d: channel mismatch");
  const int oh = (h + 2 * pad_ - k_) / stride_ + 1;
  const int ow = (w + 2 * pad_ - k_) / stride_ + 1;
  const int icg = in_ch_ / groups_;
  const int ocg = out_ch_ / groups_;
  const int kdim = icg * k_ * k_;
  const int osz = oh * ow;
  const double xscale = x.quant_scale();
  const double xinv = 1.0 / xscale;
  Tensor y({n, out_ch_, oh, ow});
  const ConvGeom g{n,  in_ch_,  out_ch_, h,       w,   oh,  ow,
                   k_, stride_, pad_,    groups_, icg, ocg};
  core::global_pool().parallel_for(static_cast<std::size_t>(n), [&](std::size_t b) {
    const float* xb = x.raw() + b * static_cast<std::size_t>(in_ch_) * h * w;
    float* yb = y.raw() + b * static_cast<std::size_t>(out_ch_) * oh * ow;
    // The quire path re-reads every element once to encode; plain vectors
    // instead of the float-only ScratchArena (exactness mode, not a hot
    // path).
    std::vector<float> col;
    if (!g.unit()) col.resize(static_cast<std::size_t>(kdim) * osz);
    std::vector<std::uint8_t> ccodes(static_cast<std::size_t>(kdim) * osz);
    for (int grp = 0; grp < groups_; ++grp) {
      const float* src = xb + static_cast<std::size_t>(grp) * icg * h * w;
      const float* colp = src;
      if (!g.unit()) {
        gemm::im2col(src, icg, h, w, k_, stride_, pad_, col.data());
        colp = col.data();
      }
      for (std::size_t i = 0; i < ccodes.size(); ++i)
        ccodes[i] = wc.encode(static_cast<double>(colp[i]) * xinv);
      const gemm::QOperand a{
          wc.codes.data() + static_cast<std::size_t>(grp) * ocg * kdim, kdim,
          /*trans=*/false, wc.scales.data() + static_cast<std::size_t>(grp) * ocg,
          0.0};
      const gemm::QOperand bop{ccodes.data(), osz, /*trans=*/false, nullptr,
                               xscale};
      gemm::qgemm_kulisch(ocg, osz, kdim, a, bop, *wc.kulisch,
                          gemm::Init::kBiasRow,
                          bias.value.raw() + static_cast<std::size_t>(grp) * ocg,
                          yb + static_cast<std::size_t>(grp) * ocg * osz, osz,
                          epi);
    }
  });
  return y;
}

Tensor Conv2d::run_conv_int8(const Tensor& x, const WeightCodes& wc,
                             const PackedWeights& cached, gemm::Epilogue epi,
                             const float* bn_scale, const float* bn_shift) {
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  if (x.dim(1) != in_ch_) throw std::invalid_argument("Conv2d: channel mismatch");
  const int oh = (h + 2 * pad_ - k_) / stride_ + 1;
  const int ow = (w + 2 * pad_ - k_) / stride_ + 1;
  const int icg = in_ch_ / groups_;
  const int ocg = out_ch_ / groups_;
  const int kdim = icg * k_ * k_;
  const int osz = oh * ow;
  const gemm::AffineLut& alut = *wc.affine;
  const double xscale = x.quant_scale();
  const double xinv = 1.0 / (alut.scale * xscale);
  Tensor y({n, out_ch_, oh, ow});
  const ConvGeom g{n,  in_ch_,  out_ch_, h,       w,   oh,  ow,
                   k_, stride_, pad_,    groups_, icg, ocg};
  // Batched lowering: sample chunks share one wide column buffer (sample i's
  // columns at offset i*osz, row stride chunk·osz), so each group runs ONE
  // qgemm_int8 of N = chunk·osz columns instead of a per-sample GEMM —
  // per-call pack/driver overhead amortizes across the batch, which is what
  // makes int8 win at small-channel shapes (M = ocg as low as 14 in the
  // mini models).  The lowering itself is the fused im2col_int8: columns are
  // written directly as int8 levels (one pass, 4x smaller buffer, and the
  // separate quantize sweep disappears).  Chunk boundaries are a function of
  // the shape only, every output element's integer accumulation is exact,
  // and the dequant expression is per-element — so results are invariant to
  // chunking, tiling, thread count, and backend, exactly like the
  // per-sample formulation this replaces.
  const std::size_t col_bytes = static_cast<std::size_t>(kdim) * osz;
  constexpr std::size_t kColBudget = std::size_t{8} << 20;
  const int chunk = static_cast<int>(std::clamp<std::size_t>(
      kColBudget / (col_bytes != 0 ? col_bytes : 1), 1,
      static_cast<std::size_t>(n)));
  core::ScratchArena& arena = core::ScratchArena::local();
  const core::ScratchArena::Scope scope(arena);
  // The level buffer reinterprets arena floats (4 int8 levels per slot);
  // the arena's 64-byte slot alignment carries over.
  std::int8_t* qcol = reinterpret_cast<std::int8_t*>(
      arena.alloc((static_cast<std::size_t>(kdim) * chunk * osz + 3) / 4));
  // Batched C rows interleave samples ([m][sample][osz]), so the GEMM lands
  // in scratch and scatters to y's [sample][channel][osz] layout after.
  float* cbuf = chunk > 1
                    ? arena.alloc(static_cast<std::size_t>(ocg) * chunk * osz)
                    : nullptr;
  for (int b0 = 0; b0 < n; b0 += chunk) {
    const int bn = std::min(chunk, n - b0);
    const int ncols = bn * osz;
    for (int grp = 0; grp < groups_; ++grp) {
      core::global_pool().parallel_for(
          static_cast<std::size_t>(bn), [&](std::size_t bi) {
            gemm::im2col_int8(
                x.raw() + (static_cast<std::size_t>(b0 + bi) * in_ch_ +
                           static_cast<std::size_t>(grp) * icg) *
                              h * w,
                icg, h, w, k_, stride_, pad_, xinv, alut.qmin, alut.qmax,
                qcol + bi * static_cast<std::size_t>(osz), ncols);
          });
      gemm::RowAffine aff;
      if (bn_scale != nullptr) {
        aff.scale = bn_scale + static_cast<std::size_t>(grp) * ocg;
        aff.shift = bn_shift + static_cast<std::size_t>(grp) * ocg;
      }
      const gemm::Int8Operand a{
          wc.codes.data() + static_cast<std::size_t>(grp) * ocg * kdim, kdim,
          /*trans=*/false, alut.q,
          cached.iscales.data() + static_cast<std::size_t>(grp) * ocg, 0.0};
      const gemm::Int8Operand bop{reinterpret_cast<const std::uint8_t*>(qcol),
                                  ncols, /*trans=*/false, gemm::identity_qlut(),
                                  nullptr, alut.scale * xscale};
      float* cdst = bn == 1
                        ? y.raw() + (static_cast<std::size_t>(b0) * out_ch_ +
                                     static_cast<std::size_t>(grp) * ocg) *
                                        osz
                        : cbuf;
      gemm::qgemm_int8(ocg, ncols, kdim, a, bop, gemm::Init::kBiasRow,
                       bias.value.raw() + static_cast<std::size_t>(grp) * ocg,
                       cdst, ncols, &core::global_pool(), epi,
                       cached.ipacks.empty() ? nullptr : &cached.ipacks[grp],
                       nullptr, bn_scale != nullptr ? &aff : nullptr);
      if (bn > 1) {
        for (int m = 0; m < ocg; ++m) {
          const float* crow = cbuf + static_cast<std::size_t>(m) * ncols;
          for (int bi = 0; bi < bn; ++bi)
            std::memcpy(y.raw() + ((static_cast<std::size_t>(b0 + bi) *
                                        out_ch_ +
                                    static_cast<std::size_t>(grp) * ocg + m)) *
                                      osz,
                        crow + static_cast<std::size_t>(bi) * osz,
                        static_cast<std::size_t>(osz) * sizeof(float));
        }
      }
    }
  }
  return y;
}

Tensor Conv2d::run_conv(const Tensor& x, const Context& ctx, const float* wt,
                        const float* bs, const gemm::PackedMatrix* group_packs,
                        gemm::Epilogue epi, const float* bn_scale,
                        const float* bn_shift) {
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  if (x.dim(1) != in_ch_) throw std::invalid_argument("Conv2d: channel mismatch");
  const int oh = (h + 2 * pad_ - k_) / stride_ + 1;
  const int ow = (w + 2 * pad_ - k_) / stride_ + 1;
  const int icg = in_ch_ / groups_;
  const int ocg = out_ch_ / groups_;
  Tensor y({n, out_ch_, oh, ow});
  if (gemm::enabled()) {
    const ConvGeom g{n,  in_ch_,  out_ch_, h,       w,   oh,  ow,
                     k_, stride_, pad_,    groups_, icg, ocg};
    // Samples are independent; nested calls (e.g. from the parallel PTQ
    // evaluators) run inline, and each sample is computed whole, so the
    // output is invariant to the thread count.
    core::global_pool().parallel_for(static_cast<std::size_t>(n), [&](std::size_t b) {
      const float* xb = x.raw() + b * static_cast<std::size_t>(in_ch_) * h * w;
      float* yb = y.raw() + b * static_cast<std::size_t>(out_ch_) * oh * ow;
      if (g.depthwise()) {
        conv_forward_depthwise(g, xb, wt, bs, yb);
        if (bn_scale != nullptr || epi != gemm::Epilogue::kNone) {
          // Channel-major second pass: the same elementwise ops the BN /
          // Activation modules would apply, so still bit-identical.
          for (int c = 0; c < g.out_ch; ++c) {
            float* yp = yb + static_cast<std::size_t>(c) * g.osz();
            if (bn_scale != nullptr) {
              const float s = bn_scale[c], t = bn_shift[c];
              for (int i = 0; i < g.osz(); ++i) yp[i] = s * yp[i] + t;
            }
            gemm::epilogue_apply(epi, yp, yp, g.osz());
          }
        }
        return;
      }
      core::ScratchArena& arena = core::ScratchArena::local();
      const core::ScratchArena::Scope scope(arena);
      float* col = g.unit() ? nullptr
                            : arena.alloc(static_cast<std::size_t>(g.kdim()) * g.osz());
      conv_forward_sample(g, xb, wt, bs, yb, col, group_packs, epi, bn_scale,
                          bn_shift);
    });
  } else {
    const int kk = k_ * k_;
    for (int b = 0; b < n; ++b) {
      for (int o = 0; o < out_ch_; ++o) {
        const int g = o / ocg;
        for (int i = 0; i < oh; ++i) {
          for (int j = 0; j < ow; ++j) {
            float acc = bs[o];
            for (int c = 0; c < icg; ++c) {
              const int ic = g * icg + c;
              const float* wo = wt + (static_cast<std::size_t>(o) * icg + c) * kk;
              for (int ki = 0; ki < k_; ++ki) {
                const int yi = i * stride_ + ki - pad_;
                if (yi < 0 || yi >= h) continue;
                for (int kj = 0; kj < k_; ++kj) {
                  const int xj = j * stride_ + kj - pad_;
                  if (xj < 0 || xj >= w) continue;
                  acc += wo[ki * k_ + kj] * x.at(b, ic, yi, xj);
                }
              }
            }
            if (bn_scale != nullptr) acc = bn_scale[o] * acc + bn_shift[o];
            y.at(b, o, i, j) = gemm::epilogue_eval(epi, acc);
          }
        }
      }
    }
  }
  if (ctx.train) x_cache_ = x;
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const Tensor& x = x_cache_;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = grad_out.dim(2), ow = grad_out.dim(3);
  const int icg = in_ch_ / groups_;
  const int ocg = out_ch_ / groups_;
  Tensor dx(x.shape());
  if (gemm::enabled()) {
    const ConvGeom g{n,  in_ch_,  out_ch_, h,       w,   oh,  ow,
                     k_, stride_, pad_,    groups_, icg, ocg};
    const int osz = g.osz(), kdim = g.kdim();
    core::ScratchArena& arena = core::ScratchArena::local();
    const core::ScratchArena::Scope scope(arena);
    const std::size_t cn = g.unit() ? 0 : static_cast<std::size_t>(kdim) * osz;
    float* col = arena.alloc(cn);
    float* dcol = arena.alloc(cn);
    // Serial over samples: gradient accumulation into weight.grad keeps the
    // naive loop's batch-ascending add order (training is single-threaded).
    for (int b = 0; b < n; ++b) {
      const float* xb = x.raw() + static_cast<std::size_t>(b) * in_ch_ * h * w;
      float* dxb = dx.raw() + static_cast<std::size_t>(b) * in_ch_ * h * w;
      for (int grp = 0; grp < groups_; ++grp) {
        const float* src = xb + static_cast<std::size_t>(grp) * icg * h * w;
        const float* colp = src;
        if (!g.unit()) {
          gemm::im2col(src, icg, h, w, k_, stride_, pad_, col);
          colp = col;
        }
        const float* gy = grad_out.raw() +
                          (static_cast<std::size_t>(b) * out_ch_ +
                           static_cast<std::size_t>(grp) * ocg) * osz;
        // db: per-channel sums of gy, (i, j) ascending as in the naive loop.
        for (int o = 0; o < ocg; ++o) {
          float s = bias.grad[grp * ocg + o];
          const float* row = gy + static_cast<std::size_t>(o) * osz;
          for (int p = 0; p < osz; ++p) s += row[p];
          bias.grad[grp * ocg + o] = s;
        }
        // dW += gy · colᵀ   ([ocg x osz] · [osz x kdim])
        gemm::sgemm(ocg, kdim, osz, gy, osz, /*trans_a=*/false, colp, osz,
                    /*trans_b=*/true,
                    weight.grad.raw() + static_cast<std::size_t>(grp) * ocg * kdim,
                    kdim, gemm::Init::kAccumulate);
        // dcol = Wᵀ · gy   ([kdim x ocg] · [ocg x osz]), then fold back to
        // image space.  Unit convs write the input-gradient slab directly.
        float* dslab = dxb + static_cast<std::size_t>(grp) * icg * h * w;
        if (g.unit()) {
          gemm::sgemm(kdim, osz, ocg,
                      weight.value.raw() + static_cast<std::size_t>(grp) * ocg * kdim,
                      kdim, /*trans_a=*/true, gy, osz, /*trans_b=*/false, dslab,
                      osz);
        } else {
          gemm::sgemm(kdim, osz, ocg,
                      weight.value.raw() + static_cast<std::size_t>(grp) * ocg * kdim,
                      kdim, /*trans_a=*/true, gy, osz, /*trans_b=*/false,
                      dcol, osz);
          gemm::col2im_add(dcol, icg, h, w, k_, stride_, pad_, dslab);
        }
      }
    }
    return dx;
  }
  for (int b = 0; b < n; ++b) {
    for (int o = 0; o < out_ch_; ++o) {
      const int g = o / ocg;
      for (int i = 0; i < oh; ++i) {
        for (int j = 0; j < ow; ++j) {
          const float go = grad_out.at(b, o, i, j);
          if (go == 0.f) continue;
          bias.grad[o] += go;
          for (int c = 0; c < icg; ++c) {
            const int ic = g * icg + c;
            for (int ki = 0; ki < k_; ++ki) {
              const int yi = i * stride_ + ki - pad_;
              if (yi < 0 || yi >= h) continue;
              for (int kj = 0; kj < k_; ++kj) {
                const int xj = j * stride_ + kj - pad_;
                if (xj < 0 || xj >= w) continue;
                weight.grad.at(o, c, ki, kj) += go * x.at(b, ic, yi, xj);
                dx.at(b, ic, yi, xj) += go * weight.value.at(o, c, ki, kj);
              }
            }
          }
        }
      }
    }
  }
  return dx;
}

// ----------------------------------------------------------- BatchNorm2d ---

BatchNorm2d::BatchNorm2d(int channels)
    : gamma(Tensor({channels}, 1.f)),
      beta(Tensor::zeros({channels})),
      running_mean(Tensor::zeros({channels})),
      running_var(Tensor({channels}, 1.f)),
      c_(channels) {}

void BatchNorm2d::collect_params(std::vector<Param*>& out) {
  out.push_back(&gamma);
  out.push_back(&beta);
}

Tensor BatchNorm2d::forward(const Tensor& x, const Context& ctx) {
  if (folded_) return x;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const float count = static_cast<float>(n * h * w);
  Tensor y(x.shape());
  if (ctx.train) {
    x_shape_ = x.shape();
    x_hat_ = Tensor(x.shape());
    inv_std_ = Tensor({c_});
    for (int c = 0; c < c_; ++c) {
      float mean = 0.f;
      for (int b = 0; b < n; ++b)
        for (int i = 0; i < h; ++i)
          for (int j = 0; j < w; ++j) mean += x.at(b, c, i, j);
      mean /= count;
      float var = 0.f;
      for (int b = 0; b < n; ++b)
        for (int i = 0; i < h; ++i)
          for (int j = 0; j < w; ++j) {
            const float d = x.at(b, c, i, j) - mean;
            var += d * d;
          }
      var /= count;
      const float inv = 1.f / std::sqrt(var + eps_);
      inv_std_[c] = inv;
      running_mean[c] = (1.f - momentum_) * running_mean[c] + momentum_ * mean;
      running_var[c] = (1.f - momentum_) * running_var[c] + momentum_ * var;
      if (c == 0) {
        // Running stats moved: stamp gamma so MERSIT_FOLD_BN caches keyed on
        // this BN rebuild (the stats tensors carry no version of their own).
        gamma.bump_version();
      }
      for (int b = 0; b < n; ++b)
        for (int i = 0; i < h; ++i)
          for (int j = 0; j < w; ++j) {
            const float xh = (x.at(b, c, i, j) - mean) * inv;
            x_hat_.at(b, c, i, j) = xh;
            y.at(b, c, i, j) = gamma.value[c] * xh + beta.value[c];
          }
    }
  } else {
    // Inference affine over contiguous [h*w] channel planes: same
    // scale*x + shift per element as the indexed loops, minus the
    // out-of-line at() call per element (and the plain loop vectorizes).
    const int hw = h * w;
    for (int c = 0; c < c_; ++c) {
      const float inv = 1.f / std::sqrt(running_var[c] + eps_);
      const float scale = gamma.value[c] * inv;
      const float shift = beta.value[c] - running_mean[c] * scale;
      for (int b = 0; b < n; ++b) {
        const float* xp =
            x.raw() + (static_cast<std::size_t>(b) * c_ + c) * hw;
        float* yp = y.raw() + (static_cast<std::size_t>(b) * c_ + c) * hw;
        for (int i = 0; i < hw; ++i) yp[i] = scale * xp[i] + shift;
      }
    }
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  const int n = x_shape_[0], h = x_shape_[2], w = x_shape_[3];
  const float count = static_cast<float>(n * h * w);
  Tensor dx({n, c_, h, w});
  for (int c = 0; c < c_; ++c) {
    float sum_dy = 0.f, sum_dy_xhat = 0.f;
    for (int b = 0; b < n; ++b)
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) {
          const float g = grad_out.at(b, c, i, j);
          sum_dy += g;
          sum_dy_xhat += g * x_hat_.at(b, c, i, j);
        }
    gamma.grad[c] += sum_dy_xhat;
    beta.grad[c] += sum_dy;
    const float scale = gamma.value[c] * inv_std_[c] / count;
    for (int b = 0; b < n; ++b)
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) {
          const float g = grad_out.at(b, c, i, j);
          dx.at(b, c, i, j) =
              scale * (count * g - sum_dy - x_hat_.at(b, c, i, j) * sum_dy_xhat);
        }
  }
  return dx;
}

void BatchNorm2d::fold_into(Conv2d& conv) {
  if (folded_) throw std::logic_error("BatchNorm2d: already folded");
  if (conv.out_channels() != c_)
    throw std::invalid_argument("BatchNorm2d::fold_into: channel mismatch");
  for (int o = 0; o < c_; ++o) {
    const float inv = 1.f / std::sqrt(running_var[o] + eps_);
    const float scale = gamma.value[o] * inv;
    for (float& v : conv.channel_span(o)) v *= scale;
    conv.bias.value[o] = (conv.bias.value[o] - running_mean[o]) * scale + beta.value[o];
  }
  conv.weight.bump_version();
  conv.bias.bump_version();
  folded_ = true;
}

// ------------------------------------------------------------ Activation ---

const char* act_name(Act a) {
  switch (a) {
    case Act::kReLU: return "ReLU";
    case Act::kReLU6: return "ReLU6";
    case Act::kSiLU: return "SiLU";
    case Act::kHardSwish: return "HardSwish";
    case Act::kGELU: return "GELU";
    case Act::kSigmoid: return "Sigmoid";
    case Act::kTanh: return "Tanh";
  }
  return "?";
}

float act_eval(Act a, float x) {
  switch (a) {
    // The fusable kinds delegate to the GEMM epilogue so the fused
    // write-back and the standalone Activation module share one formula —
    // bit-identity between the two paths holds by construction.
    case Act::kReLU: return gemm::epilogue_eval(gemm::Epilogue::kReLU, x);
    case Act::kReLU6: return gemm::epilogue_eval(gemm::Epilogue::kReLU6, x);
    case Act::kSiLU: return gemm::epilogue_eval(gemm::Epilogue::kSiLU, x);
    case Act::kHardSwish:
      return gemm::epilogue_eval(gemm::Epilogue::kHardSwish, x);
    case Act::kGELU: return gemm::epilogue_eval(gemm::Epilogue::kGELU, x);
    case Act::kSigmoid: return sigmoidf(x);
    case Act::kTanh: return std::tanh(x);
  }
  return 0.f;
}

namespace {

float act_grad(Act a, float x) {
  switch (a) {
    case Act::kReLU: return x > 0.f ? 1.f : 0.f;
    case Act::kReLU6: return (x > 0.f && x < 6.f) ? 1.f : 0.f;
    case Act::kSiLU: {
      const float s = sigmoidf(x);
      return s * (1.f + x * (1.f - s));
    }
    case Act::kHardSwish:
      if (x <= -3.f) return 0.f;
      if (x >= 3.f) return 1.f;
      return (2.f * x + 3.f) / 6.f;
    case Act::kGELU: {
      const float c = 0.7978845608f;
      const float u = c * (x + 0.044715f * x * x * x);
      const float t = std::tanh(u);
      return 0.5f * (1.f + t) +
             0.5f * x * (1.f - t * t) * c * (1.f + 3.f * 0.044715f * x * x);
    }
    case Act::kSigmoid: {
      const float s = sigmoidf(x);
      return s * (1.f - s);
    }
    case Act::kTanh: {
      const float t = std::tanh(x);
      return 1.f - t * t;
    }
  }
  return 0.f;
}

}  // namespace

Tensor Activation::forward(const Tensor& x, const Context& ctx) {
  Tensor y(x.shape());
  // act_eval delegates the fusable kinds to epilogue_eval, so the bulk
  // epilogue loop (constant-epilogue body, auto-vectorized) computes the
  // identical value per element — just without the per-element kind switch.
  if (const auto e = epilogue_for(kind_); e != gemm::Epilogue::kNone) {
    constexpr std::int64_t kChunk = 1 << 28;  // epilogue_apply takes int n
    for (std::int64_t i0 = 0; i0 < x.numel(); i0 += kChunk)
      gemm::epilogue_apply(
          e, x.raw() + i0, y.raw() + i0,
          static_cast<int>(std::min(kChunk, x.numel() - i0)));
  } else {
    for (std::int64_t i = 0; i < x.numel(); ++i) y[i] = act_eval(kind_, x[i]);
  }
  if (ctx.train) x_cache_ = x;
  return y;
}

Tensor Activation::backward(const Tensor& grad_out) {
  Tensor dx(x_cache_.shape());
  for (std::int64_t i = 0; i < dx.numel(); ++i)
    dx[i] = grad_out[i] * act_grad(kind_, x_cache_[i]);
  return dx;
}

// -------------------------------------------------------------- Pooling ----

Tensor MaxPool2d::forward(const Tensor& x, const Context& ctx) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int oh = h / 2, ow = w / 2;
  Tensor y({n, c, oh, ow});
  if (ctx.train) {
    x_cache_ = x;
    argmax_.assign(static_cast<std::size_t>(y.numel()), 0);
  }
  std::int64_t oi = 0;
  for (int b = 0; b < n; ++b)
    for (int ch = 0; ch < c; ++ch)
      for (int i = 0; i < oh; ++i)
        for (int j = 0; j < ow; ++j, ++oi) {
          float best = -1e30f;
          std::int64_t best_idx = 0;
          for (int di = 0; di < 2; ++di)
            for (int dj = 0; dj < 2; ++dj) {
              const int yi = 2 * i + di, xj = 2 * j + dj;
              const std::int64_t idx =
                  ((static_cast<std::int64_t>(b) * c + ch) * h + yi) * w + xj;
              if (x[idx] > best) {
                best = x[idx];
                best_idx = idx;
              }
            }
          y[oi] = best;
          if (ctx.train) argmax_[static_cast<std::size_t>(oi)] = best_idx;
        }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  Tensor dx(x_cache_.shape());
  for (std::int64_t oi = 0; oi < grad_out.numel(); ++oi)
    dx[argmax_[static_cast<std::size_t>(oi)]] += grad_out[oi];
  return dx;
}

Tensor GlobalAvgPool::forward(const Tensor& x, const Context& ctx) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (ctx.train) x_shape_ = x.shape();
  Tensor y({n, c});
  const float inv = 1.f / static_cast<float>(h * w);
  for (int b = 0; b < n; ++b)
    for (int ch = 0; ch < c; ++ch) {
      float acc = 0.f;
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) acc += x.at(b, ch, i, j);
      y.at(b, ch) = acc * inv;
    }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  const int n = x_shape_[0], c = x_shape_[1], h = x_shape_[2], w = x_shape_[3];
  Tensor dx({n, c, h, w});
  const float inv = 1.f / static_cast<float>(h * w);
  for (int b = 0; b < n; ++b)
    for (int ch = 0; ch < c; ++ch) {
      const float g = grad_out.at(b, ch) * inv;
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) dx.at(b, ch, i, j) = g;
    }
  return dx;
}

Tensor Flatten::forward(const Tensor& x, const Context& ctx) {
  if (ctx.train) x_shape_ = x.shape();
  const int n = x.dim(0);
  return x.reshaped({n, static_cast<int>(x.numel() / n)});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(x_shape_);
}

// ------------------------------------------------------------ Sequential ---

Sequential::Sequential(std::vector<ModulePtr> mods) : mods_(std::move(mods)) {
  names_.reserve(mods_.size());
  for (std::size_t i = 0; i < mods_.size(); ++i) names_.push_back(std::to_string(i));
}

void Sequential::add(ModulePtr m) {
  names_.push_back(std::to_string(mods_.size()));
  mods_.push_back(std::move(m));
}

void Sequential::add(std::string child_name, ModulePtr m) {
  names_.push_back(std::move(child_name));
  mods_.push_back(std::move(m));
}

Tensor Sequential::forward(const Tensor& x, const Context& ctx) {
  if (!fuse_inference_ok(ctx)) {
    Tensor cur = x;
    for (auto& m : mods_) cur = m->run(cur, ctx);
    return cur;
  }
  // Inference-only fusion scan (no quant session, so run() == forward() and
  // skipping a module loses no hooks): a Conv2d or Linear head absorbs an
  // already-folded BN (exact identity — saves the pass-through copy), an
  // unfolded BN — as the bit-identical per-channel affine write-back by
  // default, or as a weight fold (tolerance-equal) when MERSIT_FOLD_BN is
  // on — and a trailing fusable Activation (bit-identical fused epilogue).
  Tensor cur = x;
  for (std::size_t i = 0; i < mods_.size();) {
    Module* m = mods_[i].get();
    if (auto* conv = dynamic_cast<Conv2d*>(m)) {
      std::size_t j = i + 1;
      const BatchNorm2d* fold_bn = nullptr;
      const BatchNorm2d* affine_bn = nullptr;
      if (j < mods_.size()) {
        if (auto* bn = dynamic_cast<BatchNorm2d*>(mods_[j].get())) {
          if (bn->folded()) {
            ++j;  // identity module: skip it outright
          } else if (bn->channels() == conv->out_channels()) {
            (gemm::fold_bn_enabled() ? fold_bn : affine_bn) = bn;
            ++j;
          }
        }
      }
      gemm::Epilogue epi = gemm::Epilogue::kNone;
      if (j < mods_.size()) {  // activation directly after conv[+bn]
        if (auto* act = dynamic_cast<Activation*>(mods_[j].get())) {
          if (const auto e = epilogue_for(act->kind());
              e != gemm::Epilogue::kNone) {
            epi = e;
            ++j;
          }
        }
      }
      cur = fold_bn != nullptr ? conv->forward_folded(cur, ctx, *fold_bn, epi)
            : affine_bn != nullptr
                ? conv->forward_bn_fused(cur, ctx, *affine_bn, epi)
                : conv->forward_fused(cur, ctx, epi);
      i = j;
      continue;
    }
    if (auto* lin = dynamic_cast<Linear*>(m)) {
      std::size_t j = i + 1;
      gemm::Epilogue epi = gemm::Epilogue::kNone;
      if (j < mods_.size()) {
        if (auto* act = dynamic_cast<Activation*>(mods_[j].get())) {
          if (const auto e = epilogue_for(act->kind());
              e != gemm::Epilogue::kNone) {
            epi = e;
            ++j;
          }
        }
      }
      cur = lin->forward_fused(cur, ctx, epi);
      i = j;
      continue;
    }
    cur = m->run(cur, ctx);
    ++i;
  }
  return cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = mods_.rbegin(); it != mods_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

void Sequential::collect_params(std::vector<Param*>& out) {
  for (auto& m : mods_) m->collect_params(out);
}

void Sequential::collect_children(std::vector<NamedChild>& out) {
  for (std::size_t i = 0; i < mods_.size(); ++i) out.push_back({names_[i], mods_[i].get()});
}

ModulePtr Sequential::clone() const {
  auto copy = std::make_unique<Sequential>();
  copy->set_path(path());
  copy->names_ = names_;
  copy->mods_.reserve(mods_.size());
  for (const ModulePtr& m : mods_) copy->mods_.push_back(m->clone());
  return copy;
}

// -------------------------------------------------------------- Residual ---

Tensor ResidualBlock::forward(const Tensor& x, const Context& ctx) {
  Tensor main = body_->run(x, ctx);
  Tensor skip = shortcut_ ? shortcut_->run(x, ctx) : x;
  if (main.numel() != skip.numel())
    throw std::invalid_argument("ResidualBlock: branch shape mismatch");
  for (std::int64_t i = 0; i < main.numel(); ++i) main[i] += skip[i];
  return main;
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
  Tensor dx = body_->backward(grad_out);
  if (shortcut_) {
    const Tensor ds = shortcut_->backward(grad_out);
    for (std::int64_t i = 0; i < dx.numel(); ++i) dx[i] += ds[i];
  } else {
    for (std::int64_t i = 0; i < dx.numel(); ++i) dx[i] += grad_out[i];
  }
  return dx;
}

void ResidualBlock::collect_params(std::vector<Param*>& out) {
  body_->collect_params(out);
  if (shortcut_) shortcut_->collect_params(out);
}

void ResidualBlock::collect_children(std::vector<NamedChild>& out) {
  out.push_back({"body", body_.get()});
  if (shortcut_) out.push_back({"shortcut", shortcut_.get()});
}

ModulePtr ResidualBlock::clone() const {
  auto copy = std::make_unique<ResidualBlock>(body_->clone(),
                                              shortcut_ ? shortcut_->clone() : nullptr);
  copy->set_path(path());
  return copy;
}

// -------------------------------------------------------------------- SE ---

SEBlock::SEBlock(int channels, int reduced, std::mt19937& rng)
    : c_(channels), fc1_(channels, reduced, rng), fc2_(reduced, channels, rng) {}

void SEBlock::collect_params(std::vector<Param*>& out) {
  fc1_.collect_params(out);
  fc2_.collect_params(out);
}

void SEBlock::collect_children(std::vector<NamedChild>& out) {
  out.push_back({"fc1", &fc1_});
  out.push_back({"fc2", &fc2_});
}

Tensor SEBlock::forward(const Tensor& x, const Context& ctx) {
  // Computed in locals so concurrent inference forwards on a shared model
  // (parallel PTQ calibration/eval) don't race; caches move into members
  // only under ctx.train, where runs are single-threaded.
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  Tensor pooled({n, c_});
  const float inv = 1.f / static_cast<float>(h * w);
  for (int b = 0; b < n; ++b)
    for (int c = 0; c < c_; ++c) {
      float acc = 0.f;
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) acc += x.at(b, c, i, j);
      pooled.at(b, c) = acc * inv;
    }
  // fc1's ReLU is applied by SEBlock itself (no Activation module and no
  // intermediate quant hook), so fusing it into fc1's GEMM write-back is
  // legal even under a quant session; backward needs nothing from z1 either,
  // but training keeps the explicit form so fc1 caches its input.
  Tensor h1;
  if (ctx.train) {
    Tensor z1 = fc1_.forward(pooled, ctx);
    h1 = Tensor(z1.shape());
    for (std::int64_t i = 0; i < z1.numel(); ++i) h1[i] = z1[i] > 0.f ? z1[i] : 0.f;
  } else {
    h1 = fc1_.forward_fused(pooled, ctx, gemm::Epilogue::kReLU);
  }
  Tensor z2 = fc2_.forward(h1, ctx);
  Tensor gate(z2.shape());
  for (std::int64_t i = 0; i < z2.numel(); ++i) gate[i] = sigmoidf(z2[i]);
  Tensor y(x.shape());
  for (int b = 0; b < n; ++b)
    for (int c = 0; c < c_; ++c) {
      const float g = gate.at(b, c);
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) y.at(b, c, i, j) = x.at(b, c, i, j) * g;
    }
  if (ctx.train) {
    x_cache_ = x;
    h1_ = std::move(h1);
    gate_ = std::move(gate);
  }
  return y;
}

Tensor SEBlock::backward(const Tensor& grad_out) {
  const Tensor& x = x_cache_;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  Tensor dgate({n, c_});
  Tensor dx(x.shape());
  for (int b = 0; b < n; ++b)
    for (int c = 0; c < c_; ++c) {
      const float g = gate_.at(b, c);
      float acc = 0.f;
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) {
          const float go = grad_out.at(b, c, i, j);
          dx.at(b, c, i, j) = go * g;          // direct path
          acc += go * x.at(b, c, i, j);        // gate path
        }
      dgate.at(b, c) = acc;
    }
  // Through the sigmoid.
  Tensor dz2(dgate.shape());
  for (std::int64_t i = 0; i < dz2.numel(); ++i) {
    const float g = gate_[i];
    dz2[i] = dgate[i] * g * (1.f - g);
  }
  Tensor dh1 = fc2_.backward(dz2);
  for (std::int64_t i = 0; i < dh1.numel(); ++i)
    if (h1_[i] <= 0.f) dh1[i] = 0.f;
  Tensor dpooled = fc1_.backward(dh1);
  const float inv = 1.f / static_cast<float>(h * w);
  for (int b = 0; b < n; ++b)
    for (int c = 0; c < c_; ++c) {
      const float g = dpooled.at(b, c) * inv;
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) dx.at(b, c, i, j) += g;
    }
  return dx;
}

}  // namespace mersit::nn
