// Synthetic datasets substituting for ImageNet and GLUE (see DESIGN.md).
//
// The vision task is a 10-way procedural-pattern classification: each class
// owns a fixed prototype (random blobs + orientation grating, drawn once
// from the dataset seed); samples blend the prototype with noise, a random
// gain, and a spatial jitter, so FP32 models land in the high-90s and
// quantization damage is measurable.
//
// The four text tasks mirror GLUE's structure on a small synthetic
// vocabulary: CoLA-like acceptability (positional grammar; MCC metric),
// MNLI-like 3-way premise/hypothesis inference, MRPC-like paraphrase
// detection, and SST-2-like sentiment (token valence).  Pair tasks are
// encoded BERT-style: [CLS] s1 [SEP] s2.
#pragma once

#include "nn/train.h"

namespace mersit::nn {

/// 10-class procedural image dataset: [n, channels, size, size].
/// `seed` drives the sampling noise; `task_seed` fixes the class prototypes,
/// so train/test splits share prototypes by using the same task_seed with
/// different seeds.
[[nodiscard]] Dataset make_vision_dataset(int n, int channels, int size,
                                          unsigned seed, unsigned task_seed = 77);

enum class GlueTask { kCola, kMnliMM, kMrpc, kSst2 };

[[nodiscard]] const char* glue_task_name(GlueTask task);
[[nodiscard]] int glue_num_classes(GlueTask task);

/// Special token ids shared by all text tasks.
inline constexpr int kClsToken = 0;
inline constexpr int kSepToken = 1;
inline constexpr int kFirstContentToken = 2;

/// Sequence-classification dataset: inputs [n, seq_len] of token ids.
[[nodiscard]] Dataset make_glue_dataset(GlueTask task, int n, int vocab,
                                        int seq_len, unsigned seed);

}  // namespace mersit::nn
