#include "nn/replica.h"

#include <stdexcept>
#include <string>

namespace mersit::nn {

ReplicaPool::ReplicaPool(const Module& proto, int count) {
  if (count < 1)
    throw std::invalid_argument("ReplicaPool: replica count " +
                                std::to_string(count) + " must be >= 1");
  replicas_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    auto r = std::make_unique<Replica>();
    r->module = proto.clone();
    replicas_.push_back(std::move(r));
  }
}

ReplicaPool::Lease ReplicaPool::acquire(int i) {
  if (i < 0 || i >= size())
    throw std::out_of_range("ReplicaPool: replica index " + std::to_string(i) +
                            " out of range [0, " + std::to_string(size()) + ")");
  Replica& r = *replicas_[static_cast<std::size_t>(i)];
  return Lease(std::unique_lock<std::mutex>(r.mu), r.module.get(), i);
}

}  // namespace mersit::nn
