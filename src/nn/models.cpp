#include "nn/models.h"

#include <cmath>

namespace mersit::nn {

namespace {

ModulePtr seq(std::vector<ModulePtr> mods) {
  return std::make_unique<Sequential>(std::move(mods));
}

ModulePtr conv(int in, int out, int k, int stride, int pad, int groups,
               std::mt19937& rng) {
  return std::make_unique<Conv2d>(in, out, k, stride, pad, groups, rng);
}

ModulePtr bn(int c) { return std::make_unique<BatchNorm2d>(c); }
ModulePtr act(Act a) { return std::make_unique<Activation>(a); }

/// conv3x3 + BN + activation.
void push_cba(std::vector<ModulePtr>& v, int in, int out, int stride, Act a,
              std::mt19937& rng) {
  v.push_back(conv(in, out, 3, stride, 1, 1, rng));
  v.push_back(bn(out));
  v.push_back(act(a));
}

}  // namespace

// ------------------------------------------------------------------ VGG ----

ModulePtr make_vgg_mini(int in_ch, int classes, std::mt19937& rng, int img) {
  const int final_side = img / 4;  // two 2x2 MaxPools halve the side twice
  std::vector<ModulePtr> v;
  v.push_back(conv(in_ch, 14, 3, 1, 1, 1, rng));
  v.push_back(act(Act::kReLU));
  v.push_back(conv(14, 14, 3, 1, 1, 1, rng));
  v.push_back(act(Act::kReLU));
  v.push_back(std::make_unique<MaxPool2d>());
  v.push_back(conv(14, 24, 3, 1, 1, 1, rng));
  v.push_back(act(Act::kReLU));
  v.push_back(conv(24, 24, 3, 1, 1, 1, rng));
  v.push_back(act(Act::kReLU));
  v.push_back(std::make_unique<MaxPool2d>());
  v.push_back(std::make_unique<Flatten>());
  v.push_back(std::make_unique<Linear>(24 * final_side * final_side, 48, rng));
  v.push_back(act(Act::kReLU));
  v.push_back(std::make_unique<Linear>(48, classes, rng));
  return seq(std::move(v));
}

// --------------------------------------------------------------- ResNet ----

namespace {

ModulePtr resnet_block(int in, int out, int stride, std::mt19937& rng) {
  std::vector<ModulePtr> body;
  body.push_back(conv(in, out, 3, stride, 1, 1, rng));
  body.push_back(bn(out));
  body.push_back(act(Act::kReLU));
  body.push_back(conv(out, out, 3, 1, 1, 1, rng));
  body.push_back(bn(out));
  ModulePtr shortcut;
  if (stride != 1 || in != out) {
    std::vector<ModulePtr> sc;
    sc.push_back(conv(in, out, 1, stride, 0, 1, rng));
    sc.push_back(bn(out));
    shortcut = seq(std::move(sc));
  }
  std::vector<ModulePtr> block;
  block.push_back(std::make_unique<ResidualBlock>(seq(std::move(body)),
                                                  std::move(shortcut)));
  block.push_back(act(Act::kReLU));
  return seq(std::move(block));
}

}  // namespace

ModulePtr make_resnet_mini(int in_ch, int classes, int blocks_per_stage,
                           std::mt19937& rng) {
  std::vector<ModulePtr> v;
  push_cba(v, in_ch, 12, 1, Act::kReLU, rng);
  for (int b = 0; b < blocks_per_stage; ++b)
    v.push_back(resnet_block(12, 12, 1, rng));
  v.push_back(resnet_block(12, 24, 2, rng));
  for (int b = 1; b < blocks_per_stage; ++b)
    v.push_back(resnet_block(24, 24, 1, rng));
  v.push_back(resnet_block(24, 32, 2, rng));
  v.push_back(std::make_unique<GlobalAvgPool>());
  v.push_back(std::make_unique<Linear>(32, classes, rng));
  return seq(std::move(v));
}

// ------------------------------------------------------------ MobileNet ----

namespace {

/// MobileNet inverted residual: 1x1 expand -> depthwise 3x3 -> 1x1 project,
/// optional SE, residual when shapes allow.
ModulePtr inverted_residual(int in, int out, int expand, int stride, Act a,
                            bool use_se, std::mt19937& rng) {
  const int mid = in * expand;
  std::vector<ModulePtr> body;
  body.push_back(conv(in, mid, 1, 1, 0, 1, rng));
  body.push_back(bn(mid));
  body.push_back(act(a));
  body.push_back(conv(mid, mid, 3, stride, 1, mid, rng));  // depthwise
  body.push_back(bn(mid));
  body.push_back(act(a));
  if (use_se) body.push_back(std::make_unique<SEBlock>(mid, std::max(2, mid / 4), rng));
  body.push_back(conv(mid, out, 1, 1, 0, 1, rng));
  body.push_back(bn(out));
  if (stride == 1 && in == out)
    return std::make_unique<ResidualBlock>(seq(std::move(body)), nullptr);
  return seq(std::move(body));
}

/// EfficientNetV2-style fused MBConv: 3x3 expand conv -> 1x1 project.
ModulePtr fused_mbconv(int in, int out, int expand, int stride, Act a,
                       std::mt19937& rng) {
  const int mid = in * expand;
  std::vector<ModulePtr> body;
  body.push_back(conv(in, mid, 3, stride, 1, 1, rng));
  body.push_back(bn(mid));
  body.push_back(act(a));
  body.push_back(conv(mid, out, 1, 1, 0, 1, rng));
  body.push_back(bn(out));
  if (stride == 1 && in == out)
    return std::make_unique<ResidualBlock>(seq(std::move(body)), nullptr);
  return seq(std::move(body));
}

}  // namespace

ModulePtr make_mobilenet_v2_mini(int in_ch, int classes, std::mt19937& rng) {
  std::vector<ModulePtr> v;
  push_cba(v, in_ch, 8, 1, Act::kReLU6, rng);
  v.push_back(inverted_residual(8, 12, 3, 1, Act::kReLU6, false, rng));
  v.push_back(inverted_residual(12, 12, 3, 1, Act::kReLU6, false, rng));
  v.push_back(inverted_residual(12, 20, 3, 2, Act::kReLU6, false, rng));
  v.push_back(inverted_residual(20, 20, 3, 1, Act::kReLU6, false, rng));
  v.push_back(inverted_residual(20, 28, 3, 2, Act::kReLU6, false, rng));
  v.push_back(std::make_unique<GlobalAvgPool>());
  v.push_back(std::make_unique<Linear>(28, classes, rng));
  return seq(std::move(v));
}

ModulePtr make_mobilenet_v3_mini(int in_ch, int classes, std::mt19937& rng) {
  std::vector<ModulePtr> v;
  push_cba(v, in_ch, 8, 1, Act::kHardSwish, rng);
  v.push_back(inverted_residual(8, 12, 3, 1, Act::kReLU, true, rng));
  v.push_back(inverted_residual(12, 12, 3, 1, Act::kHardSwish, true, rng));
  v.push_back(inverted_residual(12, 20, 3, 2, Act::kHardSwish, true, rng));
  v.push_back(inverted_residual(20, 20, 3, 1, Act::kHardSwish, true, rng));
  v.push_back(inverted_residual(20, 28, 3, 2, Act::kHardSwish, true, rng));
  v.push_back(std::make_unique<GlobalAvgPool>());
  v.push_back(std::make_unique<Linear>(28, 32, rng));
  v.push_back(act(Act::kHardSwish));
  v.push_back(std::make_unique<Linear>(32, classes, rng));
  return seq(std::move(v));
}

ModulePtr make_efficientnet_b0_mini(int in_ch, int classes, std::mt19937& rng) {
  std::vector<ModulePtr> v;
  push_cba(v, in_ch, 8, 1, Act::kSiLU, rng);
  v.push_back(inverted_residual(8, 12, 2, 1, Act::kSiLU, true, rng));
  v.push_back(inverted_residual(12, 12, 4, 1, Act::kSiLU, true, rng));
  v.push_back(inverted_residual(12, 20, 4, 2, Act::kSiLU, true, rng));
  v.push_back(inverted_residual(20, 20, 4, 1, Act::kSiLU, true, rng));
  v.push_back(inverted_residual(20, 28, 4, 2, Act::kSiLU, true, rng));
  v.push_back(std::make_unique<GlobalAvgPool>());
  v.push_back(std::make_unique<Linear>(28, classes, rng));
  return seq(std::move(v));
}

ModulePtr make_efficientnet_v2_mini(int in_ch, int classes, std::mt19937& rng) {
  std::vector<ModulePtr> v;
  push_cba(v, in_ch, 8, 1, Act::kSiLU, rng);
  v.push_back(fused_mbconv(8, 12, 2, 1, Act::kSiLU, rng));
  v.push_back(fused_mbconv(12, 12, 2, 1, Act::kSiLU, rng));
  v.push_back(fused_mbconv(12, 20, 2, 2, Act::kSiLU, rng));
  v.push_back(inverted_residual(20, 20, 4, 1, Act::kSiLU, true, rng));
  v.push_back(inverted_residual(20, 28, 4, 2, Act::kSiLU, true, rng));
  v.push_back(std::make_unique<GlobalAvgPool>());
  v.push_back(std::make_unique<Linear>(28, classes, rng));
  return seq(std::move(v));
}

// ----------------------------------------------------------------- BERT ----

ModulePtr make_bert_mini(int vocab, int max_len, int dim, int heads, int layers,
                         int ff_dim, int classes, std::mt19937& rng) {
  std::vector<ModulePtr> v;
  v.push_back(std::make_unique<Embedding>(vocab, max_len, dim, rng));
  for (int l = 0; l < layers; ++l)
    v.push_back(std::make_unique<TransformerBlock>(dim, heads, ff_dim, rng));
  v.push_back(std::make_unique<LayerNorm>(dim));
  v.push_back(std::make_unique<ClsPool>());
  v.push_back(std::make_unique<Linear>(dim, classes, rng));
  return seq(std::move(v));
}

// ------------------------------------------------------------------ zoo ----

std::vector<NamedModel> make_vision_zoo(int in_ch, int classes, unsigned seed,
                                        int img) {
  std::vector<NamedModel> zoo;
  std::mt19937 rng(seed);
  zoo.push_back({"VGG16-mini", make_vgg_mini(in_ch, classes, rng, img)});
  zoo.push_back({"ResNet18-mini", make_resnet_mini(in_ch, classes, 1, rng)});
  zoo.push_back({"ResNet50-mini", make_resnet_mini(in_ch, classes, 2, rng)});
  zoo.push_back({"ResNet101-mini", make_resnet_mini(in_ch, classes, 3, rng)});
  zoo.push_back({"MobileNet_v2-mini", make_mobilenet_v2_mini(in_ch, classes, rng)});
  zoo.push_back({"MobileNet_v3-mini", make_mobilenet_v3_mini(in_ch, classes, rng)});
  zoo.push_back({"EfficientNet_b0-mini", make_efficientnet_b0_mini(in_ch, classes, rng)});
  zoo.push_back({"EfficientNet_v2-mini", make_efficientnet_v2_mini(in_ch, classes, rng)});
  return zoo;
}

void fold_all_batchnorms(Module& root) {
  const std::vector<Module*> mods = root.modules();
  for (std::size_t i = 0; i + 1 < mods.size(); ++i) {
    auto* c = dynamic_cast<Conv2d*>(mods[i]);
    auto* b = dynamic_cast<BatchNorm2d*>(mods[i + 1]);
    if (c != nullptr && b != nullptr && !b->folded()) b->fold_into(*c);
  }
}

std::int64_t parameter_count(Module& m) {
  std::int64_t n = 0;
  for (const Param* p : m.parameters()) n += p->value.numel();
  return n;
}

std::int64_t count_nonfinite_params(Module& m) {
  std::int64_t n = 0;
  for (const Param* p : m.parameters())
    for (const float v : p->value.data())
      if (!std::isfinite(v)) ++n;
  return n;
}

}  // namespace mersit::nn
