#include "nn/models.h"

#include <cmath>

namespace mersit::nn {

namespace {

ModulePtr conv(int in, int out, int k, int stride, int pad, int groups,
               std::mt19937& rng) {
  return std::make_unique<Conv2d>(in, out, k, stride, pad, groups, rng);
}

ModulePtr bn(int c) { return std::make_unique<BatchNorm2d>(c); }
ModulePtr act(Act a) { return std::make_unique<Activation>(a); }

/// conv3x3 + BN + activation, named `<prefix>_conv` / `<prefix>_bn` /
/// `<prefix>_act`.
void add_cba(Sequential& s, const std::string& prefix, int in, int out,
             int stride, Act a, std::mt19937& rng) {
  s.add(prefix + "_conv", conv(in, out, 3, stride, 1, 1, rng));
  s.add(prefix + "_bn", bn(out));
  s.add(prefix + "_act", act(a));
}

}  // namespace

// ------------------------------------------------------------------ VGG ----

ModulePtr make_vgg_mini(int in_ch, int classes, std::mt19937& rng, int img) {
  const int final_side = img / 4;  // two 2x2 MaxPools halve the side twice
  auto m = std::make_unique<Sequential>();
  m->add("conv1", conv(in_ch, 14, 3, 1, 1, 1, rng));
  m->add("relu1", act(Act::kReLU));
  m->add("conv2", conv(14, 14, 3, 1, 1, 1, rng));
  m->add("relu2", act(Act::kReLU));
  m->add("pool1", std::make_unique<MaxPool2d>());
  m->add("conv3", conv(14, 24, 3, 1, 1, 1, rng));
  m->add("relu3", act(Act::kReLU));
  m->add("conv4", conv(24, 24, 3, 1, 1, 1, rng));
  m->add("relu4", act(Act::kReLU));
  m->add("pool2", std::make_unique<MaxPool2d>());
  m->add("flatten", std::make_unique<Flatten>());
  m->add("fc1", std::make_unique<Linear>(24 * final_side * final_side, 48, rng));
  m->add("relu5", act(Act::kReLU));
  m->add("fc2", std::make_unique<Linear>(48, classes, rng));
  assign_paths(*m, "vgg");
  return m;
}

// --------------------------------------------------------------- ResNet ----

namespace {

ModulePtr resnet_block(int in, int out, int stride, std::mt19937& rng) {
  auto body = std::make_unique<Sequential>();
  body->add("conv1", conv(in, out, 3, stride, 1, 1, rng));
  body->add("bn1", bn(out));
  body->add("relu", act(Act::kReLU));
  body->add("conv2", conv(out, out, 3, 1, 1, 1, rng));
  body->add("bn2", bn(out));
  ModulePtr shortcut;
  if (stride != 1 || in != out) {
    auto sc = std::make_unique<Sequential>();
    sc->add("conv", conv(in, out, 1, stride, 0, 1, rng));
    sc->add("bn", bn(out));
    shortcut = std::move(sc);
  }
  auto block = std::make_unique<Sequential>();
  block->add("residual", std::make_unique<ResidualBlock>(std::move(body),
                                                         std::move(shortcut)));
  block->add("relu", act(Act::kReLU));
  return block;
}

}  // namespace

ModulePtr make_resnet_mini(int in_ch, int classes, int blocks_per_stage,
                           std::mt19937& rng) {
  const char* root = blocks_per_stage == 1   ? "resnet18"
                     : blocks_per_stage == 2 ? "resnet50"
                     : blocks_per_stage == 3 ? "resnet101"
                                             : "resnet";
  auto m = std::make_unique<Sequential>();
  add_cba(*m, "stem", in_ch, 12, 1, Act::kReLU, rng);
  for (int b = 0; b < blocks_per_stage; ++b)
    m->add("stage1_block" + std::to_string(b), resnet_block(12, 12, 1, rng));
  m->add("stage2_block0", resnet_block(12, 24, 2, rng));
  for (int b = 1; b < blocks_per_stage; ++b)
    m->add("stage2_block" + std::to_string(b), resnet_block(24, 24, 1, rng));
  m->add("stage3_block0", resnet_block(24, 32, 2, rng));
  m->add("avgpool", std::make_unique<GlobalAvgPool>());
  m->add("fc", std::make_unique<Linear>(32, classes, rng));
  assign_paths(*m, root);
  return m;
}

// ------------------------------------------------------------ MobileNet ----

namespace {

/// MobileNet inverted residual: 1x1 expand -> depthwise 3x3 -> 1x1 project,
/// optional SE, residual when shapes allow.
ModulePtr inverted_residual(int in, int out, int expand, int stride, Act a,
                            bool use_se, std::mt19937& rng) {
  const int mid = in * expand;
  auto body = std::make_unique<Sequential>();
  body->add("expand_conv", conv(in, mid, 1, 1, 0, 1, rng));
  body->add("expand_bn", bn(mid));
  body->add("expand_act", act(a));
  body->add("dw_conv", conv(mid, mid, 3, stride, 1, mid, rng));  // depthwise
  body->add("dw_bn", bn(mid));
  body->add("dw_act", act(a));
  if (use_se)
    body->add("se", std::make_unique<SEBlock>(mid, std::max(2, mid / 4), rng));
  body->add("project_conv", conv(mid, out, 1, 1, 0, 1, rng));
  body->add("project_bn", bn(out));
  if (stride == 1 && in == out)
    return std::make_unique<ResidualBlock>(std::move(body), nullptr);
  return body;
}

/// EfficientNetV2-style fused MBConv: 3x3 expand conv -> 1x1 project.
ModulePtr fused_mbconv(int in, int out, int expand, int stride, Act a,
                       std::mt19937& rng) {
  const int mid = in * expand;
  auto body = std::make_unique<Sequential>();
  body->add("expand_conv", conv(in, mid, 3, stride, 1, 1, rng));
  body->add("expand_bn", bn(mid));
  body->add("expand_act", act(a));
  body->add("project_conv", conv(mid, out, 1, 1, 0, 1, rng));
  body->add("project_bn", bn(out));
  if (stride == 1 && in == out)
    return std::make_unique<ResidualBlock>(std::move(body), nullptr);
  return body;
}

}  // namespace

ModulePtr make_mobilenet_v2_mini(int in_ch, int classes, std::mt19937& rng) {
  auto m = std::make_unique<Sequential>();
  add_cba(*m, "stem", in_ch, 8, 1, Act::kReLU6, rng);
  m->add("block1", inverted_residual(8, 12, 3, 1, Act::kReLU6, false, rng));
  m->add("block2", inverted_residual(12, 12, 3, 1, Act::kReLU6, false, rng));
  m->add("block3", inverted_residual(12, 20, 3, 2, Act::kReLU6, false, rng));
  m->add("block4", inverted_residual(20, 20, 3, 1, Act::kReLU6, false, rng));
  m->add("block5", inverted_residual(20, 28, 3, 2, Act::kReLU6, false, rng));
  m->add("avgpool", std::make_unique<GlobalAvgPool>());
  m->add("fc", std::make_unique<Linear>(28, classes, rng));
  assign_paths(*m, "mobilenet_v2");
  return m;
}

ModulePtr make_mobilenet_v3_mini(int in_ch, int classes, std::mt19937& rng) {
  auto m = std::make_unique<Sequential>();
  add_cba(*m, "stem", in_ch, 8, 1, Act::kHardSwish, rng);
  m->add("block1", inverted_residual(8, 12, 3, 1, Act::kReLU, true, rng));
  m->add("block2", inverted_residual(12, 12, 3, 1, Act::kHardSwish, true, rng));
  m->add("block3", inverted_residual(12, 20, 3, 2, Act::kHardSwish, true, rng));
  m->add("block4", inverted_residual(20, 20, 3, 1, Act::kHardSwish, true, rng));
  m->add("block5", inverted_residual(20, 28, 3, 2, Act::kHardSwish, true, rng));
  m->add("avgpool", std::make_unique<GlobalAvgPool>());
  m->add("fc1", std::make_unique<Linear>(28, 32, rng));
  m->add("fc1_act", act(Act::kHardSwish));
  m->add("fc2", std::make_unique<Linear>(32, classes, rng));
  assign_paths(*m, "mobilenet_v3");
  return m;
}

ModulePtr make_efficientnet_b0_mini(int in_ch, int classes, std::mt19937& rng) {
  auto m = std::make_unique<Sequential>();
  add_cba(*m, "stem", in_ch, 8, 1, Act::kSiLU, rng);
  m->add("block1", inverted_residual(8, 12, 2, 1, Act::kSiLU, true, rng));
  m->add("block2", inverted_residual(12, 12, 4, 1, Act::kSiLU, true, rng));
  m->add("block3", inverted_residual(12, 20, 4, 2, Act::kSiLU, true, rng));
  m->add("block4", inverted_residual(20, 20, 4, 1, Act::kSiLU, true, rng));
  m->add("block5", inverted_residual(20, 28, 4, 2, Act::kSiLU, true, rng));
  m->add("avgpool", std::make_unique<GlobalAvgPool>());
  m->add("fc", std::make_unique<Linear>(28, classes, rng));
  assign_paths(*m, "efficientnet_b0");
  return m;
}

ModulePtr make_efficientnet_v2_mini(int in_ch, int classes, std::mt19937& rng) {
  auto m = std::make_unique<Sequential>();
  add_cba(*m, "stem", in_ch, 8, 1, Act::kSiLU, rng);
  m->add("block1", fused_mbconv(8, 12, 2, 1, Act::kSiLU, rng));
  m->add("block2", fused_mbconv(12, 12, 2, 1, Act::kSiLU, rng));
  m->add("block3", fused_mbconv(12, 20, 2, 2, Act::kSiLU, rng));
  m->add("block4", inverted_residual(20, 20, 4, 1, Act::kSiLU, true, rng));
  m->add("block5", inverted_residual(20, 28, 4, 2, Act::kSiLU, true, rng));
  m->add("avgpool", std::make_unique<GlobalAvgPool>());
  m->add("fc", std::make_unique<Linear>(28, classes, rng));
  assign_paths(*m, "efficientnet_v2");
  return m;
}

// ----------------------------------------------------------------- BERT ----

ModulePtr make_bert_mini(int vocab, int max_len, int dim, int heads, int layers,
                         int ff_dim, int classes, std::mt19937& rng) {
  auto m = std::make_unique<Sequential>();
  m->add("embed", std::make_unique<Embedding>(vocab, max_len, dim, rng));
  for (int l = 0; l < layers; ++l)
    m->add("layer" + std::to_string(l),
           std::make_unique<TransformerBlock>(dim, heads, ff_dim, rng));
  m->add("final_ln", std::make_unique<LayerNorm>(dim));
  m->add("cls_pool", std::make_unique<ClsPool>());
  m->add("classifier", std::make_unique<Linear>(dim, classes, rng));
  assign_paths(*m, "bert");
  return m;
}

// ------------------------------------------------------------------ zoo ----

std::vector<NamedModel> make_vision_zoo(int in_ch, int classes, unsigned seed,
                                        int img) {
  std::vector<NamedModel> zoo;
  std::mt19937 rng(seed);
  zoo.push_back({"VGG16-mini", make_vgg_mini(in_ch, classes, rng, img)});
  zoo.push_back({"ResNet18-mini", make_resnet_mini(in_ch, classes, 1, rng)});
  zoo.push_back({"ResNet50-mini", make_resnet_mini(in_ch, classes, 2, rng)});
  zoo.push_back({"ResNet101-mini", make_resnet_mini(in_ch, classes, 3, rng)});
  zoo.push_back({"MobileNet_v2-mini", make_mobilenet_v2_mini(in_ch, classes, rng)});
  zoo.push_back({"MobileNet_v3-mini", make_mobilenet_v3_mini(in_ch, classes, rng)});
  zoo.push_back({"EfficientNet_b0-mini", make_efficientnet_b0_mini(in_ch, classes, rng)});
  zoo.push_back({"EfficientNet_v2-mini", make_efficientnet_v2_mini(in_ch, classes, rng)});
  return zoo;
}

void fold_all_batchnorms(Module& root) {
  const std::vector<Module*> mods = root.modules();
  for (std::size_t i = 0; i + 1 < mods.size(); ++i) {
    auto* c = dynamic_cast<Conv2d*>(mods[i]);
    auto* b = dynamic_cast<BatchNorm2d*>(mods[i + 1]);
    if (c != nullptr && b != nullptr && !b->folded()) b->fold_into(*c);
  }
}

std::int64_t parameter_count(Module& m) {
  std::int64_t n = 0;
  for (const Param* p : m.parameters()) n += p->value.numel();
  return n;
}

std::int64_t count_nonfinite_params(Module& m) {
  std::int64_t n = 0;
  for (const Param* p : m.parameters())
    for (const float v : p->value.data())
      if (!std::isfinite(v)) ++n;
  return n;
}

}  // namespace mersit::nn
