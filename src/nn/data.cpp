#include "nn/data.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mersit::nn {

Dataset make_vision_dataset(int n, int channels, int size, unsigned seed,
                             unsigned task_seed) {
  constexpr int kClasses = 10;
  std::mt19937 proto_rng(task_seed * 7919u + 13u);
  // Fixed per-class prototypes: 3 gaussian blobs + an orientation grating.
  struct Blob {
    float cx, cy, sigma, amp;
    int ch;
  };
  std::vector<std::vector<Blob>> blobs(kClasses);
  std::vector<float> grate_angle(kClasses), grate_freq(kClasses);
  std::uniform_real_distribution<float> unit(0.f, 1.f);
  for (int k = 0; k < kClasses; ++k) {
    for (int b = 0; b < 3; ++b) {
      blobs[static_cast<std::size_t>(k)].push_back(
          {unit(proto_rng) * static_cast<float>(size),
           unit(proto_rng) * static_cast<float>(size),
           1.f + 2.f * unit(proto_rng), 0.7f + unit(proto_rng),
           static_cast<int>(proto_rng() % static_cast<unsigned>(channels))});
    }
    grate_angle[static_cast<std::size_t>(k)] = unit(proto_rng) * 3.14159f;
    grate_freq[static_cast<std::size_t>(k)] = 0.6f + 1.2f * unit(proto_rng);
  }

  std::mt19937 rng(seed);
  std::normal_distribution<float> noise(0.f, 0.4f);
  std::uniform_real_distribution<float> gain(0.6f, 1.4f);
  std::uniform_int_distribution<int> jitter(-2, 2);

  Dataset ds;
  ds.num_classes = kClasses;
  ds.inputs = Tensor({n, channels, size, size});
  ds.labels.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int k = static_cast<int>(rng() % kClasses);
    ds.labels[static_cast<std::size_t>(i)] = k;
    const float g = gain(rng);
    const int dx = jitter(rng), dy = jitter(rng);
    // Per-sample class-independent clutter: structured distractor blobs that
    // dominate the input energy, so the class signal is subtle and
    // quantization noise meaningfully erodes the decision margin.
    Blob clutter[3];
    for (Blob& b : clutter) {
      b = {unit(rng) * static_cast<float>(size), unit(rng) * static_cast<float>(size),
           1.f + 2.f * unit(rng), 0.35f + 0.5f * unit(rng),
           static_cast<int>(rng() % static_cast<unsigned>(channels))};
    }
    for (int c = 0; c < channels; ++c) {
      for (int y = 0; y < size; ++y) {
        for (int x = 0; x < size; ++x) {
          float v = 0.f;
          for (const Blob& b : blobs[static_cast<std::size_t>(k)]) {
            if (b.ch != c) continue;
            const float ddx = static_cast<float>(x + dx) - b.cx;
            const float ddy = static_cast<float>(y + dy) - b.cy;
            v += 0.8f * b.amp *
                 std::exp(-(ddx * ddx + ddy * ddy) / (2.f * b.sigma * b.sigma));
          }
          for (const Blob& b : clutter) {
            if (b.ch != c) continue;
            const float ddx = static_cast<float>(x) - b.cx;
            const float ddy = static_cast<float>(y) - b.cy;
            v += b.amp * std::exp(-(ddx * ddx + ddy * ddy) / (2.f * b.sigma * b.sigma));
          }
          const float a = grate_angle[static_cast<std::size_t>(k)];
          const float phase = (std::cos(a) * static_cast<float>(x + dx) +
                               std::sin(a) * static_cast<float>(y + dy)) *
                              grate_freq[static_cast<std::size_t>(k)];
          v += 0.22f * std::sin(phase) * (c == 0 ? 1.f : 0.5f);
          ds.inputs.at(i, c, y, x) = g * v + noise(rng);
        }
      }
    }
  }
  return ds;
}

const char* glue_task_name(GlueTask task) {
  switch (task) {
    case GlueTask::kCola: return "CoLA";
    case GlueTask::kMnliMM: return "MNLI-mm";
    case GlueTask::kMrpc: return "MRPC";
    case GlueTask::kSst2: return "SST-2";
  }
  return "?";
}

int glue_num_classes(GlueTask task) {
  return task == GlueTask::kMnliMM ? 3 : 2;
}

namespace {

int content_tokens(int vocab) { return vocab - kFirstContentToken; }

/// Deterministic "antonym" pairing of content tokens (used by MNLI).
int antonym(int tok, int vocab) {
  const int c = content_tokens(vocab);
  const int idx = tok - kFirstContentToken;
  return kFirstContentToken + (idx + c / 2) % c;
}

Dataset make_sst2(int n, int vocab, int seq_len, std::mt19937& rng) {
  // Valence: first third positive, second third negative, rest neutral.
  const int c = content_tokens(vocab);
  auto valence = [&](int tok) {
    const int idx = tok - kFirstContentToken;
    if (idx < c / 3) return 1;
    if (idx < 2 * (c / 3)) return -1;
    return 0;
  };
  Dataset ds;
  ds.num_classes = 2;
  ds.inputs = Tensor({n, seq_len});
  ds.labels.resize(static_cast<std::size_t>(n));
  std::uniform_int_distribution<int> tok(kFirstContentToken, vocab - 1);
  for (int i = 0; i < n; ++i) {
    int sum = 0;
    ds.inputs.at(i, 0) = kClsToken;
    for (int t = 1; t < seq_len; ++t) {
      const int v = tok(rng);
      ds.inputs.at(i, t) = static_cast<float>(v);
      sum += valence(v);
    }
    if (sum == 0) {
      // Nudge one neutral slot to a sentiment token to break the tie.
      const int v = kFirstContentToken + static_cast<int>(rng() % static_cast<unsigned>(c / 3));
      ds.inputs.at(i, 1) = static_cast<float>(v);
      sum = 1;
    }
    ds.labels[static_cast<std::size_t>(i)] = sum > 0 ? 1 : 0;
  }
  return ds;
}

Dataset make_cola(int n, int vocab, int seq_len, std::mt19937& rng) {
  // "Grammar": even content positions draw from set A (even content ids),
  // odd positions from set B.  Negatives violate 1-2 positions.
  Dataset ds;
  ds.num_classes = 2;
  ds.inputs = Tensor({n, seq_len});
  ds.labels.resize(static_cast<std::size_t>(n));
  const int c = content_tokens(vocab);
  auto draw = [&](bool even) {
    const int idx = 2 * static_cast<int>(rng() % static_cast<unsigned>(c / 2)) + (even ? 0 : 1);
    return kFirstContentToken + idx;
  };
  for (int i = 0; i < n; ++i) {
    const bool acceptable = (rng() & 1) != 0;
    ds.labels[static_cast<std::size_t>(i)] = acceptable ? 1 : 0;
    ds.inputs.at(i, 0) = kClsToken;
    for (int t = 1; t < seq_len; ++t)
      ds.inputs.at(i, t) = static_cast<float>(draw(t % 2 == 0));
    if (!acceptable) {
      // Violate roughly a quarter of the positions (at least two) so the
      // "ungrammatical" signal is strong enough to generalize from.
      const int violations = std::max(2, (seq_len - 1) / 4);
      for (int v = 0; v < violations; ++v) {
        const int t = 1 + static_cast<int>(rng() % static_cast<unsigned>(seq_len - 1));
        ds.inputs.at(i, t) = static_cast<float>(draw(t % 2 != 0));  // wrong set
      }
    }
  }
  return ds;
}

Dataset make_mrpc(int n, int vocab, int seq_len, std::mt19937& rng) {
  // [CLS] s1 [SEP] s2 ; paraphrase = s2 is a shuffled copy of s1 with one
  // token replaced; negative = independent s2.
  Dataset ds;
  ds.num_classes = 2;
  ds.inputs = Tensor({n, seq_len});
  ds.labels.resize(static_cast<std::size_t>(n));
  const int half = (seq_len - 2) / 2;
  std::uniform_int_distribution<int> tok(kFirstContentToken, vocab - 1);
  for (int i = 0; i < n; ++i) {
    const bool para = (rng() & 1) != 0;
    ds.labels[static_cast<std::size_t>(i)] = para ? 1 : 0;
    std::vector<int> s1(static_cast<std::size_t>(half));
    for (auto& t : s1) t = tok(rng);
    std::vector<int> s2;
    if (para) {
      s2 = s1;
      std::shuffle(s2.begin(), s2.end(), rng);
      s2[rng() % s2.size()] = tok(rng);
    } else {
      s2.resize(static_cast<std::size_t>(half));
      for (auto& t : s2) t = tok(rng);
    }
    int p = 0;
    ds.inputs.at(i, p++) = kClsToken;
    for (const int t : s1) ds.inputs.at(i, p++) = static_cast<float>(t);
    ds.inputs.at(i, p++) = kSepToken;
    for (const int t : s2) ds.inputs.at(i, p++) = static_cast<float>(t);
    while (p < seq_len) ds.inputs.at(i, p++) = kSepToken;
  }
  return ds;
}

Dataset make_mnli(int n, int vocab, int seq_len, std::mt19937& rng) {
  // Premise tokens; hypothesis = subset of premise (entailment, 2),
  // antonyms of premise tokens (contradiction, 0), or random (neutral, 1).
  Dataset ds;
  ds.num_classes = 3;
  ds.inputs = Tensor({n, seq_len});
  ds.labels.resize(static_cast<std::size_t>(n));
  const int half = (seq_len - 2) / 2;
  std::uniform_int_distribution<int> tok(kFirstContentToken, vocab - 1);
  for (int i = 0; i < n; ++i) {
    const int label = static_cast<int>(rng() % 3u);
    ds.labels[static_cast<std::size_t>(i)] = label;
    std::vector<int> prem(static_cast<std::size_t>(half));
    for (auto& t : prem) t = tok(rng);
    std::vector<int> hyp(static_cast<std::size_t>(half));
    for (auto& t : hyp) {
      const int src = prem[rng() % prem.size()];
      if (label == 2) t = src;                       // entailment
      else if (label == 0) t = antonym(src, vocab);  // contradiction
      else t = tok(rng);                             // neutral
    }
    int p = 0;
    ds.inputs.at(i, p++) = kClsToken;
    for (const int t : prem) ds.inputs.at(i, p++) = static_cast<float>(t);
    ds.inputs.at(i, p++) = kSepToken;
    for (const int t : hyp) ds.inputs.at(i, p++) = static_cast<float>(t);
    while (p < seq_len) ds.inputs.at(i, p++) = kSepToken;
  }
  return ds;
}

}  // namespace

Dataset make_glue_dataset(GlueTask task, int n, int vocab, int seq_len,
                          unsigned seed) {
  if (vocab < 8 || seq_len < 6)
    throw std::invalid_argument("make_glue_dataset: vocab/seq_len too small");
  std::mt19937 rng(seed);
  switch (task) {
    case GlueTask::kCola: return make_cola(n, vocab, seq_len, rng);
    case GlueTask::kMnliMM: return make_mnli(n, vocab, seq_len, rng);
    case GlueTask::kMrpc: return make_mrpc(n, vocab, seq_len, rng);
    case GlueTask::kSst2: return make_sst2(n, vocab, seq_len, rng);
  }
  throw std::invalid_argument("make_glue_dataset: unknown task");
}

}  // namespace mersit::nn
