#include "nn/tensor.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace mersit::nn {

namespace {

std::size_t shape_numel(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (const int d : shape) {
    if (d <= 0) throw std::invalid_argument("Tensor: non-positive dimension");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.f) {}

Tensor::Tensor(std::vector<int> shape, float fill)
    : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {}

Tensor Tensor::randn(std::vector<int> shape, std::mt19937& rng, float stddev) {
  Tensor t(std::move(shape));
  std::normal_distribution<float> dist(0.f, stddev);
  for (auto& v : t.data_) v = dist(rng);
  return t;
}

float& Tensor::at(int a, int b) {
  return data_[static_cast<std::size_t>(a) * static_cast<std::size_t>(shape_[1]) +
               static_cast<std::size_t>(b)];
}
float& Tensor::at(int a, int b, int c) {
  return data_[(static_cast<std::size_t>(a) * static_cast<std::size_t>(shape_[1]) +
                static_cast<std::size_t>(b)) *
                   static_cast<std::size_t>(shape_[2]) +
               static_cast<std::size_t>(c)];
}
float& Tensor::at(int a, int b, int c, int d) {
  return data_[((static_cast<std::size_t>(a) * static_cast<std::size_t>(shape_[1]) +
                 static_cast<std::size_t>(b)) *
                    static_cast<std::size_t>(shape_[2]) +
                static_cast<std::size_t>(c)) *
                   static_cast<std::size_t>(shape_[3]) +
               static_cast<std::size_t>(d)];
}
float Tensor::at(int a, int b) const { return const_cast<Tensor*>(this)->at(a, b); }
float Tensor::at(int a, int b, int c) const {
  return const_cast<Tensor*>(this)->at(a, b, c);
}
float Tensor::at(int a, int b, int c, int d) const {
  return const_cast<Tensor*>(this)->at(a, b, c, d);
}

Tensor Tensor::reshaped(std::vector<int> shape) const& {
  if (static_cast<std::int64_t>(shape_numel(shape)) != numel())
    throw std::invalid_argument("Tensor::reshaped: numel mismatch");
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = data_;
  t.qscale_ = qscale_;
  return t;
}

Tensor Tensor::reshaped(std::vector<int> shape) && {
  if (static_cast<std::int64_t>(shape_numel(shape)) != numel())
    throw std::invalid_argument("Tensor::reshaped: numel mismatch");
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(data_);
  t.qscale_ = qscale_;
  shape_.clear();
  return t;
}

void Tensor::fill(float v) {
  for (auto& x : data_) x = v;
}

float Tensor::abs_max() const {
  float m = 0.f;
  for (const float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i)
    os << shape_[i] << (i + 1 < shape_.size() ? "," : "");
  os << ']';
  return os.str();
}

}  // namespace mersit::nn
