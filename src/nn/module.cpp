#include "nn/module.h"

#include <stdexcept>
#include <unordered_set>

namespace mersit::nn {

namespace {

void walk_named(Module& m, const std::string& path, std::vector<NamedModuleRef>& out) {
  out.push_back({path, &m});
  std::vector<NamedChild> ch;
  m.collect_children(ch);
  for (const NamedChild& c : ch) {
    const std::string child_path = path.empty() ? c.name : path + "/" + c.name;
    walk_named(*c.module, child_path, out);
  }
}

}  // namespace

std::vector<NamedModuleRef> named_modules(Module& root, const std::string& root_name) {
  std::vector<NamedModuleRef> out;
  walk_named(root, root_name, out);
  return out;
}

void assign_paths(Module& root, const std::string& root_name) {
  const std::vector<NamedModuleRef> named = named_modules(root, root_name);
  std::unordered_set<std::string> seen;
  for (const NamedModuleRef& ref : named) {
    if (!seen.insert(ref.path).second)
      throw std::logic_error("assign_paths: duplicate module path '" + ref.path +
                             "' (" + ref.module->name() +
                             ") — sibling names must be unique");
  }
  for (const NamedModuleRef& ref : named) ref.module->set_path(ref.path);
}

}  // namespace mersit::nn
