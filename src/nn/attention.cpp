#include "nn/attention.h"

#include <cmath>
#include <stdexcept>

#include "core/thread_pool.h"
#include "nn/gemm/gemm.h"

namespace mersit::nn {

// ------------------------------------------------------------- Embedding ---

Embedding::Embedding(int vocab, int max_len, int dim, std::mt19937& rng)
    : table(Tensor::randn({vocab, dim}, rng, 0.1f)),
      pos(Tensor::randn({max_len, dim}, rng, 0.1f)),
      vocab_(vocab),
      max_len_(max_len),
      dim_(dim) {}

void Embedding::collect_params(std::vector<Param*>& out) {
  out.push_back(&table);
  out.push_back(&pos);
}

Tensor Embedding::forward(const Tensor& tokens, const Context& ctx) {
  const int n = tokens.dim(0), t = tokens.dim(1);
  if (t > max_len_) throw std::invalid_argument("Embedding: sequence too long");
  Tensor y({n, t, dim_});
  for (int b = 0; b < n; ++b)
    for (int i = 0; i < t; ++i) {
      const int id = static_cast<int>(tokens.at(b, i));
      if (id < 0 || id >= vocab_) throw std::invalid_argument("Embedding: bad token id");
      for (int d = 0; d < dim_; ++d)
        y.at(b, i, d) = table.value.at(id, d) + pos.value.at(i, d);
    }
  if (ctx.train) tok_cache_ = tokens;
  return y;
}

Tensor Embedding::backward(const Tensor& grad_out) {
  const int n = tok_cache_.dim(0), t = tok_cache_.dim(1);
  for (int b = 0; b < n; ++b)
    for (int i = 0; i < t; ++i) {
      const int id = static_cast<int>(tok_cache_.at(b, i));
      for (int d = 0; d < dim_; ++d) {
        table.grad.at(id, d) += grad_out.at(b, i, d);
        pos.grad.at(i, d) += grad_out.at(b, i, d);
      }
    }
  return Tensor(tok_cache_.shape());  // tokens carry no gradient
}

// ------------------------------------------------------------- LayerNorm ---

LayerNorm::LayerNorm(int dim)
    : gamma(Tensor({dim}, 1.f)), beta(Tensor::zeros({dim})), d_(dim) {}

void LayerNorm::collect_params(std::vector<Param*>& out) {
  out.push_back(&gamma);
  out.push_back(&beta);
}

Tensor LayerNorm::forward(const Tensor& x, const Context& ctx) {
  const std::int64_t rows = x.numel() / d_;
  Tensor y(x.shape());
  if (ctx.train) {
    x_hat_ = Tensor(x.shape());
    inv_std_ = Tensor({static_cast<int>(rows)});
  }
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x.raw() + r * d_;
    float* yr = y.raw() + r * d_;
    float mean = 0.f;
    for (int d = 0; d < d_; ++d) mean += xr[d];
    mean /= static_cast<float>(d_);
    float var = 0.f;
    for (int d = 0; d < d_; ++d) {
      const float dv = xr[d] - mean;
      var += dv * dv;
    }
    var /= static_cast<float>(d_);
    const float inv = 1.f / std::sqrt(var + eps_);
    for (int d = 0; d < d_; ++d) {
      const float xh = (xr[d] - mean) * inv;
      if (ctx.train) x_hat_[r * d_ + d] = xh;
      yr[d] = gamma.value[d] * xh + beta.value[d];
    }
    if (ctx.train) inv_std_[r] = inv;
  }
  return y;
}

Tensor LayerNorm::backward(const Tensor& grad_out) {
  const std::int64_t rows = grad_out.numel() / d_;
  Tensor dx(grad_out.shape());
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* g = grad_out.raw() + r * d_;
    float sum_gxh = 0.f, sum_g = 0.f;
    for (int d = 0; d < d_; ++d) {
      const float gh = g[d] * gamma.value[d];
      sum_g += gh;
      sum_gxh += gh * x_hat_[r * d_ + d];
      gamma.grad[d] += g[d] * x_hat_[r * d_ + d];
      beta.grad[d] += g[d];
    }
    const float inv = inv_std_[r] / static_cast<float>(d_);
    for (int d = 0; d < d_; ++d) {
      const float gh = g[d] * gamma.value[d];
      dx[r * d_ + d] =
          inv * (static_cast<float>(d_) * gh - sum_g - x_hat_[r * d_ + d] * sum_gxh);
    }
  }
  return dx;
}

// ----------------------------------------------------------------- MHSA ----

MultiHeadSelfAttention::MultiHeadSelfAttention(int dim, int heads, std::mt19937& rng)
    : d_(dim),
      h_(heads),
      dh_(dim / heads),
      wq_(dim, dim, rng),
      wk_(dim, dim, rng),
      wv_(dim, dim, rng),
      wo_(dim, dim, rng) {
  if (dim % heads != 0)
    throw std::invalid_argument("MHSA: heads must divide dim");
}

void MultiHeadSelfAttention::collect_params(std::vector<Param*>& out) {
  wq_.collect_params(out);
  wk_.collect_params(out);
  wv_.collect_params(out);
  wo_.collect_params(out);
}

void MultiHeadSelfAttention::collect_children(std::vector<NamedChild>& out) {
  out.push_back({"wq", &wq_});
  out.push_back({"wk", &wk_});
  out.push_back({"wv", &wv_});
  out.push_back({"wo", &wo_});
}

Tensor MultiHeadSelfAttention::forward(const Tensor& x, const Context& ctx) {
  // Inference-mode forwards run concurrently on a shared model (the parallel
  // PTQ calibration/eval loops), so everything is computed in locals; member
  // caches are written only under ctx.train, where runs are single-threaded.
  const int n = x.dim(0);
  const int t = x.dim(1);
  const Tensor flat = x.reshaped({n * t, d_});
  Tensor q = wq_.forward(flat, ctx);
  Tensor k = wk_.forward(flat, ctx);
  Tensor v = wv_.forward(flat, ctx);
  const float scale = 1.f / std::sqrt(static_cast<float>(dh_));

  Tensor attn({n * h_, t, t});
  Tensor ctx_out({n * t, d_});
  if (gemm::enabled()) {
    // Per (batch, head): scores = Q·Kᵀ (heads are strided d_-wide column
    // slices, which sgemm's leading dims address directly), softmax rows,
    // then context = attn·V.  The score and context sums run in the same
    // ascending-k order as the naive loops, so outputs are bit-identical;
    // head tasks are disjoint, so the fan-out is thread-count invariant.
    core::global_pool().parallel_for(
        static_cast<std::size_t>(n) * static_cast<std::size_t>(h_),
        [&](std::size_t task) {
          const int b = static_cast<int>(task) / h_;
          const int hd = static_cast<int>(task) % h_;
          const int off = hd * dh_;
          float* a = attn.raw() + (static_cast<std::int64_t>(b) * h_ + hd) * t * t;
          const float* qb = q.raw() + static_cast<std::int64_t>(b) * t * d_ + off;
          const float* kb = k.raw() + static_cast<std::int64_t>(b) * t * d_ + off;
          const float* vb = v.raw() + static_cast<std::int64_t>(b) * t * d_ + off;
          gemm::sgemm(t, t, dh_, qb, d_, /*trans_a=*/false, kb, d_,
                      /*trans_b=*/true, a, t);
          for (int i = 0; i < t; ++i) {
            float* ar = a + static_cast<std::int64_t>(i) * t;
            float mx = -1e30f;
            for (int j = 0; j < t; ++j) {
              ar[j] *= scale;
              mx = std::max(mx, ar[j]);
            }
            float denom = 0.f;
            for (int j = 0; j < t; ++j) {
              ar[j] = std::exp(ar[j] - mx);
              denom += ar[j];
            }
            const float invd = 1.f / denom;
            for (int j = 0; j < t; ++j) ar[j] *= invd;
          }
          gemm::sgemm(t, dh_, t, a, t, /*trans_a=*/false, vb, d_,
                      /*trans_b=*/false,
                      ctx_out.raw() + static_cast<std::int64_t>(b) * t * d_ + off,
                      d_);
        });
  } else {
    for (int b = 0; b < n; ++b) {
      for (int hd = 0; hd < h_; ++hd) {
        const int off = hd * dh_;
        float* a = attn.raw() + (static_cast<std::int64_t>(b) * h_ + hd) * t * t;
        for (int i = 0; i < t; ++i) {
          const float* qi = q.raw() + (static_cast<std::int64_t>(b) * t + i) * d_ + off;
          float mx = -1e30f;
          for (int j = 0; j < t; ++j) {
            const float* kj = k.raw() + (static_cast<std::int64_t>(b) * t + j) * d_ + off;
            float s = 0.f;
            for (int d = 0; d < dh_; ++d) s += qi[d] * kj[d];
            s *= scale;
            a[i * t + j] = s;
            mx = std::max(mx, s);
          }
          float denom = 0.f;
          for (int j = 0; j < t; ++j) {
            a[i * t + j] = std::exp(a[i * t + j] - mx);
            denom += a[i * t + j];
          }
          const float invd = 1.f / denom;
          for (int j = 0; j < t; ++j) a[i * t + j] *= invd;
          float* out = ctx_out.raw() + (static_cast<std::int64_t>(b) * t + i) * d_ + off;
          for (int d = 0; d < dh_; ++d) out[d] = 0.f;
          for (int j = 0; j < t; ++j) {
            const float w = a[i * t + j];
            const float* vj = v.raw() + (static_cast<std::int64_t>(b) * t + j) * d_ + off;
            for (int d = 0; d < dh_; ++d) out[d] += w * vj[d];
          }
        }
      }
    }
  }
  Tensor y = wo_.forward(ctx_out, ctx);
  if (ctx.train) {
    n_ = n;
    t_ = t;
    q_ = std::move(q);
    k_ = std::move(k);
    v_ = std::move(v);
    attn_ = std::move(attn);
  }
  return std::move(y).reshaped({n, t, d_});
}

Tensor MultiHeadSelfAttention::backward(const Tensor& grad_out) {
  const Tensor gflat = grad_out.reshaped({n_ * t_, d_});
  Tensor dctx = wo_.backward(gflat);
  Tensor dq({n_ * t_, d_}), dk({n_ * t_, d_}), dv({n_ * t_, d_});
  const float scale = 1.f / std::sqrt(static_cast<float>(dh_));
  for (int b = 0; b < n_; ++b) {
    for (int hd = 0; hd < h_; ++hd) {
      const int off = hd * dh_;
      const float* a = attn_.raw() + (static_cast<std::int64_t>(b) * h_ + hd) * t_ * t_;
      for (int i = 0; i < t_; ++i) {
        const float* go = dctx.raw() + (static_cast<std::int64_t>(b) * t_ + i) * d_ + off;
        // dv and d(attn).
        std::vector<float> da(static_cast<std::size_t>(t_), 0.f);
        for (int j = 0; j < t_; ++j) {
          const float* vj = v_.raw() + (static_cast<std::int64_t>(b) * t_ + j) * d_ + off;
          float* dvj = dv.raw() + (static_cast<std::int64_t>(b) * t_ + j) * d_ + off;
          float acc = 0.f;
          const float w = a[i * t_ + j];
          for (int d = 0; d < dh_; ++d) {
            acc += go[d] * vj[d];
            dvj[d] += go[d] * w;
          }
          da[static_cast<std::size_t>(j)] = acc;
        }
        // Softmax jacobian: ds_j = a_j * (da_j - sum_k a_k da_k).
        float dot = 0.f;
        for (int j = 0; j < t_; ++j) dot += a[i * t_ + j] * da[static_cast<std::size_t>(j)];
        const float* qi = q_.raw() + (static_cast<std::int64_t>(b) * t_ + i) * d_ + off;
        float* dqi = dq.raw() + (static_cast<std::int64_t>(b) * t_ + i) * d_ + off;
        for (int j = 0; j < t_; ++j) {
          const float ds = a[i * t_ + j] * (da[static_cast<std::size_t>(j)] - dot) * scale;
          const float* kj = k_.raw() + (static_cast<std::int64_t>(b) * t_ + j) * d_ + off;
          float* dkj = dk.raw() + (static_cast<std::int64_t>(b) * t_ + j) * d_ + off;
          for (int d = 0; d < dh_; ++d) {
            dqi[d] += ds * kj[d];
            dkj[d] += ds * qi[d];
          }
        }
      }
    }
  }
  Tensor dx = wq_.backward(dq);
  const Tensor dxk = wk_.backward(dk);
  const Tensor dxv = wv_.backward(dv);
  for (std::int64_t i = 0; i < dx.numel(); ++i) dx[i] += dxk[i] + dxv[i];
  return std::move(dx).reshaped({n_, t_, d_});
}

// ----------------------------------------------------- TransformerBlock ----

TransformerBlock::TransformerBlock(int dim, int heads, int ff_dim, std::mt19937& rng)
    : d_(dim),
      ff_(ff_dim),
      ln1_(dim),
      ln2_(dim),
      attn_(dim, heads, rng),
      ff1_(dim, ff_dim, rng),
      ff2_(ff_dim, dim, rng) {}

void TransformerBlock::collect_params(std::vector<Param*>& out) {
  ln1_.collect_params(out);
  ln2_.collect_params(out);
  attn_.collect_params(out);
  ff1_.collect_params(out);
  ff2_.collect_params(out);
}

void TransformerBlock::collect_children(std::vector<NamedChild>& out) {
  out.push_back({"ln1", &ln1_});
  out.push_back({"attn", &attn_});
  out.push_back({"ln2", &ln2_});
  out.push_back({"ff1", &ff1_});
  // gelu_ was historically missing from collect_modules even though it is a
  // quant point fired by forward(); it must be part of the named walk so its
  // calibration entry has a path.
  out.push_back({"gelu", &gelu_});
  out.push_back({"ff2", &ff2_});
}

Tensor TransformerBlock::forward(const Tensor& x, const Context& ctx) {
  const int n = x.dim(0);
  const int t = x.dim(1);
  if (ctx.train) {
    n_ = n;
    t_ = t;
  }
  Tensor h = ln1_.run(x, ctx);
  h = attn_.run(h, ctx);
  Tensor mid(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) mid[i] = x[i] + h[i];

  Tensor f = ln2_.run(mid, ctx);
  if (fuse_inference_ok(ctx)) {
    // No quant session, so ff1's and gelu's hooks are no-ops: fuse the GELU
    // into ff1's GEMM write-back (bit-identical — act_eval delegates to the
    // same epilogue formula) and skip the standalone module.
    f = ff1_.forward_fused(std::move(f).reshaped({n * t, d_}), ctx,
                           gemm::Epilogue::kGELU);
  } else {
    f = ff1_.run(std::move(f).reshaped({n * t, d_}), ctx);
    f = gelu_.run(f, ctx);
  }
  f = ff2_.run(f, ctx);
  Tensor out(mid.shape());
  for (std::int64_t i = 0; i < mid.numel(); ++i) out[i] = mid[i] + f[i];
  return out;
}

Tensor TransformerBlock::backward(const Tensor& grad_out) {
  // FF branch.
  Tensor g = ff2_.backward(grad_out.reshaped({n_ * t_, d_}));
  g = gelu_.backward(g);
  g = ff1_.backward(g);
  Tensor dmid = ln2_.backward(std::move(g).reshaped({n_, t_, d_}));
  for (std::int64_t i = 0; i < dmid.numel(); ++i) dmid[i] += grad_out[i];
  // Attention branch.
  Tensor ga = attn_.backward(dmid);
  Tensor dx = ln1_.backward(ga);
  for (std::int64_t i = 0; i < dx.numel(); ++i) dx[i] += dmid[i];
  return dx;
}

// --------------------------------------------------------------- ClsPool ---

Tensor ClsPool::forward(const Tensor& x, const Context& ctx) {
  if (ctx.train) x_shape_ = x.shape();
  const int n = x.dim(0), d = x.dim(2);
  Tensor y({n, d});
  for (int b = 0; b < n; ++b)
    for (int j = 0; j < d; ++j) y.at(b, j) = x.at(b, 0, j);
  return y;
}

Tensor ClsPool::backward(const Tensor& grad_out) {
  Tensor dx(x_shape_);
  const int n = x_shape_[0], d = x_shape_[2];
  for (int b = 0; b < n; ++b)
    for (int j = 0; j < d; ++j) dx.at(b, 0, j) = grad_out.at(b, j);
  return dx;
}

}  // namespace mersit::nn
