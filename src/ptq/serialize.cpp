#include "ptq/serialize.h"

#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace mersit::ptq {

namespace {

constexpr char kMagic[4] = {'M', 'Q', 'T', '1'};

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("QuantizedModel: truncated stream");
  return v;
}

}  // namespace

void QuantizedModel::save(std::ostream& os) const {
  os.write(kMagic, 4);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(format_name.size()));
  os.write(format_name.data(), static_cast<std::streamsize>(format_name.size()));
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(tensors.size()));
  for (const QuantizedTensor& t : tensors) {
    write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(t.shape.size()));
    for (const int d : t.shape) write_pod<std::int32_t>(os, d);
    write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(t.channels));
    for (const float s : t.scales) write_pod<float>(os, s);
    os.write(reinterpret_cast<const char*>(t.codes.data()),
             static_cast<std::streamsize>(t.codes.size()));
  }
}

QuantizedModel QuantizedModel::load(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (!is || std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("QuantizedModel: bad magic");
  QuantizedModel qm;
  const auto name_len = read_pod<std::uint32_t>(is);
  qm.format_name.resize(name_len);
  is.read(qm.format_name.data(), name_len);
  const auto count = read_pod<std::uint32_t>(is);
  qm.tensors.resize(count);
  for (QuantizedTensor& t : qm.tensors) {
    const auto ndim = read_pod<std::uint32_t>(is);
    if (ndim > 8) throw std::runtime_error("QuantizedModel: implausible rank");
    t.shape.resize(ndim);
    std::int64_t numel = 1;
    for (auto& d : t.shape) {
      d = read_pod<std::int32_t>(is);
      if (d <= 0) throw std::runtime_error("QuantizedModel: bad dimension");
      numel *= d;
    }
    t.channels = static_cast<int>(read_pod<std::uint32_t>(is));
    if (t.channels <= 0 || numel % t.channels != 0)
      throw std::runtime_error("QuantizedModel: bad channel count");
    t.scales.resize(static_cast<std::size_t>(t.channels));
    for (auto& s : t.scales) s = read_pod<float>(is);
    t.codes.resize(static_cast<std::size_t>(numel));
    is.read(reinterpret_cast<char*>(t.codes.data()),
            static_cast<std::streamsize>(t.codes.size()));
    if (!is) throw std::runtime_error("QuantizedModel: truncated codes");
  }
  return qm;
}

std::size_t QuantizedModel::byte_size() const {
  std::size_t n = 4 + 4 + format_name.size() + 4;
  for (const QuantizedTensor& t : tensors)
    n += 4 + 4 * t.shape.size() + 4 + 4 * t.scales.size() + t.codes.size();
  return n;
}

QuantizedModel pack_weights(nn::Module& model, const formats::Format& fmt,
                            formats::ScalePolicy policy) {
  QuantizedModel qm;
  qm.format_name = fmt.name();
  for (nn::Module* m : model.modules()) {
    auto* cw = dynamic_cast<nn::ChannelWeights*>(m);
    if (cw == nullptr) continue;
    QuantizedTensor t;
    t.channels = cw->weight_channels();
    const std::size_t per = cw->channel_span(0).size();
    t.shape = {t.channels, static_cast<int>(per)};
    t.scales.reserve(static_cast<std::size_t>(t.channels));
    t.codes.reserve(static_cast<std::size_t>(t.channels) * per);
    for (int c = 0; c < t.channels; ++c) {
      const std::span<const float> w = cw->channel_span(c);
      float mx = 0.f;
      for (const float v : w) mx = std::max(mx, std::fabs(v));
      const double scale =
          mx > 0.f ? formats::scale_for_absmax(fmt, mx, policy) : 1.0;
      t.scales.push_back(static_cast<float>(scale));
      for (const float v : w)
        t.codes.push_back(fmt.encode(static_cast<double>(v) / scale));
    }
    qm.tensors.push_back(std::move(t));
  }
  return qm;
}

void unpack_weights(nn::Module& model, const QuantizedModel& qm,
                    const formats::Format& fmt) {
  if (fmt.name() != qm.format_name)
    throw std::invalid_argument("unpack_weights: format mismatch (" + fmt.name() +
                                " vs " + qm.format_name + ")");
  std::size_t ti = 0;
  for (nn::Module* m : model.modules()) {
    auto* cw = dynamic_cast<nn::ChannelWeights*>(m);
    if (cw == nullptr) continue;
    if (ti >= qm.tensors.size())
      throw std::invalid_argument("unpack_weights: too few tensors");
    const QuantizedTensor& t = qm.tensors[ti++];
    if (t.channels != cw->weight_channels())
      throw std::invalid_argument("unpack_weights: channel mismatch");
    std::size_t k = 0;
    for (int c = 0; c < t.channels; ++c) {
      const std::span<float> w = cw->channel_span(c);
      const double scale = t.scales[static_cast<std::size_t>(c)];
      for (float& v : w)
        v = static_cast<float>(fmt.decode_value(t.codes[k++]) * scale);
    }
  }
  if (ti != qm.tensors.size())
    throw std::invalid_argument("unpack_weights: too many tensors");
}

}  // namespace mersit::ptq
