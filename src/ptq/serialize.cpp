#include "ptq/serialize.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <string>

#include "formats/kernels/kernel_cache.h"
#include "nn/gemm/qgemm.h"
#include "nn/qweights.h"
#include "ptq/ptq.h"

namespace mersit::ptq {

namespace {

constexpr char kMagic[4] = {'M', 'Q', 'T', '1'};
constexpr char kCalibMagic[4] = {'M', 'C', 'T', '1'};

// Hard caps on untrusted length fields (far above any legitimate artifact,
// far below anything that could exhaust memory).
constexpr std::uint32_t kMaxNameLen = 4096;
constexpr std::uint32_t kMaxTensors = 1u << 20;
constexpr std::uint32_t kMaxRank = 8;
constexpr std::int64_t kMaxNumel = std::int64_t{1} << 31;
constexpr std::int64_t kMaxChannels = std::int64_t{1} << 24;
constexpr std::size_t kReadChunk = std::size_t{1} << 16;
constexpr std::uint32_t kMaxCalibEntries = 1u << 20;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

void write_str(std::ostream& os, const std::string& s) {
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/// Untrusted-input reader: tracks the remaining stream size when the stream
/// is seekable, so declared lengths can be rejected *before* allocation;
/// bulk payloads are read in bounded chunks either way, so a lying length
/// on a non-seekable stream fails at the actual end of data instead of
/// triggering a giant allocation.  `who` prefixes every error message
/// ("QuantizedModel" / "CalibrationTable").
class BoundedReader {
 public:
  explicit BoundedReader(std::istream& is, const char* who = "QuantizedModel")
      : is_(is), who_(who) {
    const auto pos = is.tellg();
    if (pos == std::istream::pos_type(-1)) return;  // not seekable
    is.clear();
    is.seekg(0, std::ios::end);
    const auto end = is.tellg();
    is.seekg(pos);
    if (end != std::istream::pos_type(-1) && end >= pos) {
      remaining_ = static_cast<std::uint64_t>(end - pos);
      known_ = true;
    }
  }

  /// Reject a claimed payload of `n` bytes that cannot fit in the stream.
  void claim(std::uint64_t n, const char* what) {
    if (known_ && n > remaining_)
      throw std::runtime_error(std::string(who_) + ": " + what +
                               " exceeds remaining stream size");
  }

  void read_raw(void* dst, std::size_t n, const char* what) {
    claim(n, what);
    is_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
    if (!is_ || static_cast<std::size_t>(is_.gcount()) != n)
      throw std::runtime_error(std::string(who_) + ": truncated " + what);
    if (known_) remaining_ -= n;
  }

  template <typename T>
  T read_pod(const char* what) {
    T v{};
    read_raw(&v, sizeof(T), what);
    return v;
  }

  /// Read `count` elements of `T` into `out`, growing in bounded chunks so
  /// the allocation never outruns the data actually present.
  template <typename T>
  void read_array(std::vector<T>& out, std::uint64_t count, const char* what) {
    claim(count * sizeof(T), what);
    out.clear();
    while (count > 0) {
      const auto n = static_cast<std::size_t>(
          std::min<std::uint64_t>(count, kReadChunk / sizeof(T)));
      const std::size_t base = out.size();
      out.resize(base + n);
      read_raw(out.data() + base, n * sizeof(T), what);
      count -= n;
    }
  }

  /// Read a u32-length-prefixed string, capped at kMaxNameLen.
  std::string read_str(const char* what) {
    const auto len = read_pod<std::uint32_t>(what);
    if (len > kMaxNameLen)
      throw std::runtime_error(std::string(who_) + ": " + what + " length " +
                               std::to_string(len) + " exceeds cap");
    claim(len, what);
    std::string s(len, '\0');
    if (len > 0) read_raw(s.data(), len, what);
    return s;
  }

 private:
  std::istream& is_;
  const char* who_;
  std::uint64_t remaining_ = 0;
  bool known_ = false;
};

}  // namespace

void QuantizedModel::save(std::ostream& os) const {
  os.write(kMagic, 4);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(format_name.size()));
  os.write(format_name.data(), static_cast<std::streamsize>(format_name.size()));
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(tensors.size()));
  for (const QuantizedTensor& t : tensors) {
    write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(t.shape.size()));
    for (const int d : t.shape) write_pod<std::int32_t>(os, d);
    write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(t.channels));
    for (const float s : t.scales) write_pod<float>(os, s);
    os.write(reinterpret_cast<const char*>(t.codes.data()),
             static_cast<std::streamsize>(t.codes.size()));
  }
}

QuantizedModel QuantizedModel::load(std::istream& is) {
  BoundedReader r(is);
  char magic[4];
  r.read_raw(magic, 4, "magic");
  if (std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("QuantizedModel: bad magic");
  QuantizedModel qm;
  const auto name_len = r.read_pod<std::uint32_t>("format-name length");
  if (name_len > kMaxNameLen)
    throw std::runtime_error("QuantizedModel: format-name length " +
                             std::to_string(name_len) + " exceeds cap");
  r.claim(name_len, "format name");
  qm.format_name.resize(name_len);
  if (name_len > 0) r.read_raw(qm.format_name.data(), name_len, "format name");
  const auto count = r.read_pod<std::uint32_t>("tensor count");
  if (count > kMaxTensors)
    throw std::runtime_error("QuantizedModel: tensor count " +
                             std::to_string(count) + " exceeds cap");
  // Each tensor record occupies at least ndim + channels = 8 bytes.  No
  // reserve(count): growth stays proportional to data actually parsed.
  r.claim(std::uint64_t{8} * count, "tensor records");
  for (std::uint32_t i = 0; i < count; ++i) {
    QuantizedTensor t;
    const auto ndim = r.read_pod<std::uint32_t>("rank");
    if (ndim > kMaxRank)
      throw std::runtime_error("QuantizedModel: implausible rank " +
                               std::to_string(ndim));
    t.shape.resize(ndim);
    std::int64_t numel = 1;
    for (auto& d : t.shape) {
      d = r.read_pod<std::int32_t>("dimension");
      if (d <= 0) throw std::runtime_error("QuantizedModel: bad dimension");
      if (numel > kMaxNumel / d)
        throw std::runtime_error("QuantizedModel: element count overflow");
      numel *= d;
    }
    const auto channels = r.read_pod<std::uint32_t>("channel count");
    if (channels == 0 || static_cast<std::int64_t>(channels) > kMaxChannels ||
        static_cast<std::int64_t>(channels) > numel ||
        numel % static_cast<std::int64_t>(channels) != 0)
      throw std::runtime_error("QuantizedModel: bad channel count");
    t.channels = static_cast<int>(channels);
    r.read_array(t.scales, channels, "scales");
    r.read_array(t.codes, static_cast<std::uint64_t>(numel), "codes");
    qm.tensors.push_back(std::move(t));
  }
  return qm;
}

std::size_t QuantizedModel::byte_size() const {
  std::size_t n = 4 + 4 + format_name.size() + 4;
  for (const QuantizedTensor& t : tensors)
    n += 4 + 4 * t.shape.size() + 4 + 4 * t.scales.size() + t.codes.size();
  return n;
}

// ------------------------------------------------------ calibration table --

void CalibrationTable::save(std::ostream& os) const {
  os.write(kCalibMagic, 4);
  write_str(os, model_name);
  write_pod<float>(os, input_absmax);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(absmax.size()));
  // std::map iterates in sorted path order: identical tables serialize to
  // identical bytes.
  for (const auto& [path, mx] : absmax) {
    write_str(os, path);
    write_pod<float>(os, mx);
  }
}

CalibrationTable CalibrationTable::load(std::istream& is) {
  BoundedReader r(is, "CalibrationTable");
  char magic[4];
  r.read_raw(magic, 4, "magic");
  if (std::memcmp(magic, kCalibMagic, 4) != 0)
    throw std::runtime_error("CalibrationTable: bad magic");
  CalibrationTable t;
  t.model_name = r.read_str("model name");
  t.input_absmax = r.read_pod<float>("input absmax");
  if (!std::isfinite(t.input_absmax) || t.input_absmax < 0.f)
    throw std::runtime_error("CalibrationTable: non-finite or negative input absmax");
  const auto count = r.read_pod<std::uint32_t>("entry count");
  if (count > kMaxCalibEntries)
    throw std::runtime_error("CalibrationTable: entry count " +
                             std::to_string(count) + " exceeds cap");
  // Each entry occupies at least a path length + absmax = 8 bytes.
  r.claim(std::uint64_t{8} * count, "entry records");
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string path = r.read_str("entry path");
    if (path.empty())
      throw std::runtime_error("CalibrationTable: empty entry path");
    const float mx = r.read_pod<float>("entry absmax");
    if (!std::isfinite(mx) || mx < 0.f)
      throw std::runtime_error("CalibrationTable: non-finite or negative absmax for '" +
                               path + "'");
    if (!t.absmax.emplace(std::move(path), mx).second)
      throw std::runtime_error("CalibrationTable: duplicate entry path");
  }
  return t;
}

std::size_t CalibrationTable::byte_size() const {
  std::size_t n = 4 + 4 + model_name.size() + 4 + 4;
  for (const auto& [path, mx] : absmax) {
    (void)mx;
    n += 4 + path.size() + 4;
  }
  return n;
}

// ---------------------------------------------------------------- weights --

QuantizedModel pack_weights(nn::Module& model, const formats::Format& fmt,
                            formats::ScalePolicy policy) {
  QuantizedModel qm;
  qm.format_name = fmt.name();
  for (nn::Module* m : model.modules()) {
    auto* cw = dynamic_cast<nn::ChannelWeights*>(m);
    if (cw == nullptr) continue;
    QuantizedTensor t;
    t.path = m->path();
    t.channels = cw->weight_channels();
    const std::size_t per = cw->channel_span(0).size();
    t.shape = {t.channels, static_cast<int>(per)};
    t.scales.reserve(static_cast<std::size_t>(t.channels));
    t.codes.reserve(static_cast<std::size_t>(t.channels) * per);
    for (int c = 0; c < t.channels; ++c) {
      const std::span<const float> w = cw->channel_span(c);
      float mx = 0.f;
      for (const float v : w) mx = std::max(mx, std::fabs(v));
      const double scale =
          mx > 0.f ? formats::scale_for_absmax(fmt, mx, policy) : 1.0;
      t.scales.push_back(static_cast<float>(scale));
      for (const float v : w)
        t.codes.push_back(fmt.encode(static_cast<double>(v) / scale));
    }
    qm.tensors.push_back(std::move(t));
  }
  return qm;
}

namespace {

std::string layer_label(const nn::Module* m, std::size_t index) {
  return m->path().empty() ? "#" + std::to_string(index) + " (" + m->name() + ")"
                           : "'" + m->path() + "'";
}

/// The shared validation pass of unpack_weights / install_code_weights /
/// validate_weight_shapes: collect the ChannelWeights targets and check the
/// artifact structurally matches them, mutating nothing.  `who` prefixes
/// the error messages so each caller keeps its own name in diagnostics.
std::vector<std::pair<nn::Module*, nn::ChannelWeights*>> validated_targets(
    nn::Module& model, const QuantizedModel& qm, const char* who) {
  std::vector<std::pair<nn::Module*, nn::ChannelWeights*>> targets;
  for (nn::Module* m : model.modules()) {
    auto* cw = dynamic_cast<nn::ChannelWeights*>(m);
    if (cw != nullptr) targets.emplace_back(m, cw);
  }
  if (targets.size() != qm.tensors.size())
    throw std::invalid_argument(
        std::string(who) + ": tensor count mismatch (model has " +
        std::to_string(targets.size()) + " quantizable layers, artifact has " +
        std::to_string(qm.tensors.size()) + " tensors)");
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const QuantizedTensor& t = qm.tensors[i];
    nn::ChannelWeights* cw = targets[i].second;
    const std::string label = layer_label(targets[i].first, i);
    if (t.channels != cw->weight_channels())
      throw std::invalid_argument(
          std::string(who) + ": channel mismatch at layer " + label +
          " (model has " + std::to_string(cw->weight_channels()) +
          ", artifact has " + std::to_string(t.channels) + ")");
    if (static_cast<std::int64_t>(t.scales.size()) !=
        static_cast<std::int64_t>(t.channels))
      throw std::invalid_argument(std::string(who) +
                                  ": scale count mismatch at layer " + label);
    if (t.numel() != t.channels * static_cast<std::int64_t>(cw->channel_span(0).size()))
      throw std::invalid_argument(
          std::string(who) + ": element count mismatch at layer " + label +
          " (model has " +
          std::to_string(t.channels *
                         static_cast<std::int64_t>(cw->channel_span(0).size())) +
          ", artifact has " + std::to_string(t.numel()) + ")");
  }
  return targets;
}

}  // namespace

void validate_weight_shapes(nn::Module& model, const QuantizedModel& qm) {
  (void)validated_targets(model, qm, "validate_weight_shapes");
}

void unpack_weights(nn::Module& model, const QuantizedModel& qm,
                    const formats::Format& fmt, formats::CorruptionPolicy policy,
                    formats::CorruptionStats* stats) {
  if (fmt.name() != qm.format_name)
    throw std::invalid_argument("unpack_weights: format mismatch (" + fmt.name() +
                                " vs " + qm.format_name + ")");
  // Pass 1: validate the artifact against the whole model before touching a
  // single weight, so a structurally incompatible artifact can never leave
  // the model half-overwritten.
  const auto targets = validated_targets(model, qm, "unpack_weights");
  // Pass 2: decode.
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const QuantizedTensor& t = qm.tensors[i];
    nn::ChannelWeights* cw = targets[i].second;
    std::size_t k = 0;
    for (int c = 0; c < t.channels; ++c) {
      const std::span<float> w = cw->channel_span(c);
      const double scale = t.scales[static_cast<std::size_t>(c)];
      for (float& v : w)
        v = static_cast<float>(
            formats::decode_with_policy(fmt, t.codes[k++], policy, stats) * scale);
    }
    cw->weight_param().bump_version();  // invalidate prepacked-weight caches
  }
}

void install_code_weights(nn::Module& model, const QuantizedModel& qm,
                          const formats::Format& fmt,
                          formats::CorruptionPolicy policy,
                          formats::CorruptionStats* stats) {
  if (fmt.name() != qm.format_name)
    throw std::invalid_argument("install_code_weights: format mismatch (" +
                                fmt.name() + " vs " + qm.format_name + ")");
  const auto targets = validated_targets(model, qm, "install_code_weights");
  const auto kernel = formats::kernels::kernel_for(fmt);
  // Policy-applied decode LUT: lut[code] * scale is exactly the value
  // unpack_weights writes for that code, IEEE specials or zero-substitutions
  // included.  The pre-policy finiteness table drives the corruption
  // counters, which — like decode_with_policy's — count every non-finite
  // code regardless of policy.
  double lut[256];
  bool finite[256];
  for (int c = 0; c < 256; ++c) {
    finite[c] = std::isfinite(fmt.decode_value(static_cast<std::uint8_t>(c)));
    lut[c] = formats::decode_with_policy(fmt, static_cast<std::uint8_t>(c),
                                         policy, nullptr);
  }
  auto kulisch = std::make_shared<nn::gemm::KulischTable>(
      nn::gemm::build_kulisch_table(lut));
  const std::shared_ptr<const nn::gemm::KulischTable> shared_kulisch =
      kulisch->usable ? kulisch : nullptr;
  // The affine remap sees the *policy-applied* LUT: a zeroed NaR entry maps
  // to level 0, so INT8-family artifacts stay int8-eligible under kZero.
  auto affine = std::make_shared<nn::gemm::AffineLut>(
      nn::gemm::build_affine_lut(lut));
  const std::shared_ptr<const nn::gemm::AffineLut> shared_affine =
      affine->usable ? affine : nullptr;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const QuantizedTensor& t = qm.tensors[i];
    nn::ChannelWeights* cw = targets[i].second;
    auto wc = std::make_shared<nn::WeightCodes>();
    wc->format_name = qm.format_name;
    wc->channels = t.channels;
    wc->per_channel = static_cast<int>(cw->channel_span(0).size());
    wc->codes = t.codes;
    wc->scales.reserve(t.scales.size());
    // Scales widen float→double here, then decode as lut[code] * scale —
    // the same arithmetic (and therefore the same bits) as unpack_weights'
    // static_cast<float>(decode_with_policy(...) * double(scale)).
    for (const float s : t.scales) wc->scales.push_back(static_cast<double>(s));
    for (int c = 0; c < 256; ++c) wc->lut[c] = lut[c];
    for (const std::uint8_t code : t.codes)
      if (!finite[code]) ++wc->nonfinite;
    if (stats != nullptr) stats->non_finite += wc->nonfinite;
    wc->encode = [kernel](double v) { return kernel->encode(v); };
    wc->kulisch = shared_kulisch;
    wc->affine = shared_affine;
    cw->set_weight_codes(std::move(wc));
  }
}

// ------------------------------------------------------- serving artifacts --

ArtifactPair load_artifact_pair(std::istream& mct1, std::istream& mqt1,
                                const formats::Format& fmt) {
  ArtifactPair pair;
  pair.table = CalibrationTable::load(mct1);
  pair.weights = QuantizedModel::load(mqt1);
  if (pair.weights.format_name != fmt.name())
    throw std::runtime_error("load_artifact_pair: weight artifact is for format '" +
                             pair.weights.format_name + "', engine serves '" +
                             fmt.name() + "'");
  return pair;
}

ArtifactPair load_artifact_pair(std::istream& mct1, std::istream& mqt1,
                                const formats::Format& fmt, nn::Module& model) {
  ArtifactPair pair = load_artifact_pair(mct1, mqt1, fmt);
  validate_weight_shapes(model, pair.weights);
  return pair;
}

std::uint64_t count_nonfinite_codes(const QuantizedModel& qm,
                                    const formats::Format& fmt) {
  // One 256-entry finiteness table, then a linear scan — cheap enough to run
  // on every hot-swap without perturbing serving latency.
  bool finite[256];
  for (int code = 0; code < 256; ++code)
    finite[code] = std::isfinite(fmt.decode_value(static_cast<std::uint8_t>(code)));
  std::uint64_t n = 0;
  for (const QuantizedTensor& t : qm.tensors)
    for (const std::uint8_t code : t.codes)
      if (!finite[code]) ++n;
  return n;
}

}  // namespace mersit::ptq
