// Quantized-artifact serialization: pack the per-channel quantized weights
// of a model into true 8-bit code words plus FP32 scales (the artifact an
// 8-bit accelerator actually ships), restore them, and persist calibration
// tables.
//
// Weight container (little-endian):
//   "MQT1" | u32 format-name length | name bytes
//   u32 tensor count, then per tensor:
//     u32 ndim | i32 shape[ndim] | u32 channels |
//     f32 scale[channels] | u8 codes[numel]
//
// Calibration container (little-endian, see ptq::CalibrationTable):
//   "MCT1" | u32 model-name length | name bytes | f32 input_absmax
//   u32 entry count, then per entry:
//     u32 path length | path bytes | f32 absmax
// Entries are written in sorted path order (std::map) so two identical
// tables always serialize to identical bytes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "formats/corruption.h"
#include "formats/quantize.h"
#include "nn/module.h"
#include "ptq/ptq.h"  // CalibrationTable (held by value in ArtifactPair)

namespace mersit::ptq {

struct QuantizedTensor {
  std::vector<int> shape;            ///< original parameter shape
  int channels = 1;                  ///< leading quantization-group count
  std::vector<float> scales;         ///< one scale per channel
  std::vector<std::uint8_t> codes;   ///< one code per element

  /// Module path of the layer this tensor came from (e.g.
  /// "resnet18/stem_conv").  In-memory only — filled by pack_weights for
  /// per-layer reporting/targeting; NOT serialized (the MQT1 byte format is
  /// unchanged), so tensors parsed by load() carry an empty path.
  std::string path;

  [[nodiscard]] std::int64_t numel() const {
    return static_cast<std::int64_t>(codes.size());
  }
};

struct QuantizedModel {
  std::string format_name;           ///< e.g. "MERSIT(8,2)"
  std::vector<QuantizedTensor> tensors;  ///< one per ChannelWeights module

  void save(std::ostream& os) const;

  /// Parse a container from `is`.  Hardened against malformed input: every
  /// length field is bounds-checked against the remaining stream size (when
  /// the stream is seekable) and against hard caps, payloads are read in
  /// bounded chunks (no allocation sized by an attacker-controlled u32),
  /// and shape/channel/numel consistency is validated.  Any truncated,
  /// corrupted, or random byte stream yields a descriptive
  /// std::runtime_error — never a crash, hang, or OOM.
  [[nodiscard]] static QuantizedModel load(std::istream& is);

  /// Serialized size in bytes.
  [[nodiscard]] std::size_t byte_size() const;
};

/// Encode every ChannelWeights module of `model` into true 8-bit codes
/// (per-channel |max| scaling under `policy`).  The model is not modified.
[[nodiscard]] QuantizedModel pack_weights(nn::Module& model,
                                          const formats::Format& fmt,
                                          formats::ScalePolicy policy =
                                              formats::ScalePolicy::kMaxToUnity);

/// Decode `qm` back into the model's ChannelWeights modules (module order
/// and shapes must match).  `fmt` must be the format named in `qm`.
/// Structural compatibility (tensor count, channel counts, element counts)
/// is validated for the whole model *before* any weight is written, so a
/// mismatched artifact throws std::invalid_argument naming the offending
/// layer instead of leaving the model half-overwritten.
/// `policy` governs non-finite (NaR/Inf/NaN) codes, which a clean artifact
/// never contains but a corrupted one may: kPropagate writes IEEE specials
/// into the weights, kZeroSubstitute writes 0 and counts the substitution
/// in `stats` (see formats/corruption.h).
void unpack_weights(nn::Module& model, const QuantizedModel& qm,
                    const formats::Format& fmt,
                    formats::CorruptionPolicy policy = formats::CorruptionPolicy::kPropagate,
                    formats::CorruptionStats* stats = nullptr);

/// The structural validation pass of unpack_weights on its own: checks that
/// `qm` has one tensor per ChannelWeights module of `model` and that every
/// tensor's channel count, scale count, and element count match that
/// module's weight shape.  Mutates nothing.  Throws std::invalid_argument
/// naming the offending layer path on the first mismatch — the static gate
/// the serving engine (and the model-aware load_artifact_pair overload)
/// runs before an artifact gets anywhere near live replicas.
void validate_weight_shapes(nn::Module& model, const QuantizedModel& qm);

/// Code-domain twin of unpack_weights: instead of decoding the artifact
/// into the FP32 weights, install a nn::WeightCodes view (artifact codes,
/// double-widened per-channel scales, policy-applied decode LUT) on every
/// ChannelWeights module.  Under MERSIT_QGEMM=code the layers then pack
/// GEMM operands straight from the codes; the decoded values are
/// bit-identical to what unpack_weights would have written, so layer
/// outputs match the unpack path exactly.  The FP32 weights are left
/// untouched.  Validates like unpack_weights before installing anything.
/// Non-finite codes are counted into `stats` (and into the view's own
/// nonfinite counter) regardless of policy; with kZeroSubstitute the LUT
/// maps them to 0.0 so the GEMM never sees an IEEE special.
void install_code_weights(nn::Module& model, const QuantizedModel& qm,
                          const formats::Format& fmt,
                          formats::CorruptionPolicy policy = formats::CorruptionPolicy::kPropagate,
                          formats::CorruptionStats* stats = nullptr);

// ------------------------------------------------------- serving artifacts --

/// The two artifacts a serving replica runs on: an MCT1 calibration table
/// (activation scales) and an MQT1 weight container.  Always produced by
/// load_artifact_pair, so holding one implies both streams parsed cleanly.
struct ArtifactPair {
  CalibrationTable table;
  QuantizedModel weights;
};

/// Parse-and-validate seam for artifact hot-swap: read an MCT1 stream and
/// an MQT1 stream through the hardened loaders and check that the weight
/// container names `fmt`.  Either stream being truncated, corrupted, or
/// random throws std::runtime_error before the caller touches any replica —
/// the first gate of the serving engine's validate-then-swap contract.
[[nodiscard]] ArtifactPair load_artifact_pair(std::istream& mct1,
                                              std::istream& mqt1,
                                              const formats::Format& fmt);

/// Model-aware overload: additionally validates the parsed weight container
/// against `model`'s structure (validate_weight_shapes), so an artifact
/// whose tensor element counts do not match the target modules' weight
/// shapes is rejected *at load* — naming the offending layer path — instead
/// of surfacing later, mid-swap, from unpack_weights.
[[nodiscard]] ArtifactPair load_artifact_pair(std::istream& mct1,
                                              std::istream& mqt1,
                                              const formats::Format& fmt,
                                              nn::Module& model);

/// Count the code words of `qm` that decode non-finite (NaR/Inf/NaN) under
/// `fmt`.  Clean PTQ artifacts contain none (encode saturates), so a
/// nonzero count is evidence of corruption in storage or transport; the
/// serving engine rejects swaps whose non-finite fraction exceeds its
/// configured bound instead of serving a poisoned model.
[[nodiscard]] std::uint64_t count_nonfinite_codes(const QuantizedModel& qm,
                                                  const formats::Format& fmt);

}  // namespace mersit::ptq
