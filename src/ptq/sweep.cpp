#include "ptq/sweep.h"

#include <mutex>
#include <utility>

#include "core/thread_pool.h"

namespace mersit::ptq {

std::vector<float> run_format_sweep(
    nn::Module& model, const nn::Dataset& calib, const nn::Dataset& test,
    const std::vector<std::shared_ptr<const formats::Format>>& fmts,
    const PtqOptions& opt) {
  std::vector<float> metrics;
  metrics.reserve(fmts.size());
  // Calibration observes FP32 activations only — it is independent of the
  // format under evaluation — so one pass serves every row instead of
  // re-calibrating per format.
  const CalibrationTable table = calibrate_model(model, calib, opt.quantize_input);
  for (const auto& fmt : fmts)
    metrics.push_back(evaluate_with_table(model, table, test, *fmt, opt));
  return metrics;
}

std::vector<SweepRowResult> SweepRunner::run() {
  std::vector<SweepRowResult> results(rows_.size());
  std::mutex progress_mu;
  core::global_pool().parallel_for(rows_.size(), [&](std::size_t i) {
    results[i] = rows_[i]();
    if (progress_) {
      const std::lock_guard<std::mutex> lock(progress_mu);
      progress_(results[i]);
    }
  });
  rows_.clear();
  return results;
}

}  // namespace mersit::ptq
