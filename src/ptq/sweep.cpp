#include "ptq/sweep.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <utility>

#include "core/thread_pool.h"

namespace mersit::ptq {

std::vector<float> run_format_sweep(
    nn::Module& model, const nn::Dataset& calib, const nn::Dataset& test,
    const std::vector<std::shared_ptr<const formats::Format>>& fmts,
    const PtqOptions& opt) {
  std::vector<float> metrics;
  metrics.reserve(fmts.size());
  // Calibration observes FP32 activations only — it is independent of the
  // format under evaluation — so one pass serves every row instead of
  // re-calibrating per format.
  const CalibrationTable table = calibrate_model(model, calib, opt.quantize_input);
  for (const auto& fmt : fmts)
    metrics.push_back(evaluate_with_table(model, table, test, *fmt, opt));
  return metrics;
}

// -------------------------------------------------------- cell checkpoints --
//
// One JSON object per cell: {"key":"...","name":"...","fp32":F,"metrics":[..]}
// Floats print with %.9g (round-trip exact for float32), so a resumed table
// is bit-identical to the table of an uninterrupted run.

namespace {

std::string sanitize_key(const std::string& key) {
  std::string s = key;
  for (char& c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return s;
}

std::filesystem::path cell_path(const std::string& dir, const std::string& key) {
  return std::filesystem::path(dir) / (sanitize_key(key) + ".json");
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

std::string encode_cell(const std::string& key, const SweepRowResult& row) {
  std::string out = "{\"key\":";
  append_json_string(out, key);
  out += ",\"name\":";
  append_json_string(out, row.name);
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"fp32\":%.9g,\"metrics\":[", row.fp32);
  out += buf;
  for (std::size_t i = 0; i < row.metrics.size(); ++i) {
    std::snprintf(buf, sizeof(buf), i ? ",%.9g" : "%.9g", row.metrics[i]);
    out += buf;
  }
  out += "]}\n";
  return out;
}

/// Strict parser for exactly the shape encode_cell writes (field order
/// fixed).  Anything else — truncation, corruption, a foreign file — yields
/// nullopt and the cell recomputes.
std::optional<SweepRowResult> decode_cell(const std::string& bytes,
                                          const std::string& expect_key) {
  std::size_t pos = 0;
  auto lit = [&](const char* s) {
    const std::size_t n = std::strlen(s);
    if (bytes.compare(pos, n, s) != 0) return false;
    pos += n;
    return true;
  };
  auto str = [&]() -> std::optional<std::string> {
    if (pos >= bytes.size() || bytes[pos] != '"') return std::nullopt;
    ++pos;
    std::string s;
    while (pos < bytes.size() && bytes[pos] != '"') {
      if (bytes[pos] == '\\') {
        ++pos;
        if (pos >= bytes.size()) return std::nullopt;
      }
      s += bytes[pos++];
    }
    if (pos >= bytes.size()) return std::nullopt;
    ++pos;  // closing quote
    return s;
  };
  auto num = [&]() -> std::optional<float> {
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(bytes.c_str() + pos, &end);
    if (end == bytes.c_str() + pos || errno == ERANGE) return std::nullopt;
    pos = static_cast<std::size_t>(end - bytes.c_str());
    return static_cast<float>(v);
  };

  SweepRowResult row;
  if (!lit("{\"key\":")) return std::nullopt;
  const auto key = str();
  if (!key || *key != expect_key) return std::nullopt;
  if (!lit(",\"name\":")) return std::nullopt;
  const auto name = str();
  if (!name) return std::nullopt;
  row.name = *name;
  if (!lit(",\"fp32\":")) return std::nullopt;
  const auto fp32 = num();
  if (!fp32) return std::nullopt;
  row.fp32 = *fp32;
  if (!lit(",\"metrics\":[")) return std::nullopt;
  if (pos < bytes.size() && bytes[pos] != ']') {
    while (true) {
      const auto m = num();
      if (!m) return std::nullopt;
      row.metrics.push_back(*m);
      if (pos < bytes.size() && bytes[pos] == ',') {
        ++pos;
        continue;
      }
      break;
    }
  }
  if (!lit("]}")) return std::nullopt;
  while (pos < bytes.size() && (bytes[pos] == '\n' || bytes[pos] == '\r')) ++pos;
  if (pos != bytes.size()) return std::nullopt;  // trailing junk
  return row;
}

std::optional<SweepRowResult> load_cell(const std::filesystem::path& path,
                                        const std::string& key) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;  // missing: plain cache miss, no note
  std::ostringstream buf;
  buf << is.rdbuf();
  auto row = decode_cell(buf.str(), key);
  if (!row)
    std::fprintf(stderr,
                 "[sweep] checkpoint %s is corrupt or stale; recomputing\n",
                 path.string().c_str());
  return row;
}

void store_cell(const std::filesystem::path& path, const std::string& key,
                const SweepRowResult& row) {
  // tmp + rename: a cell file either exists complete or not at all.
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      std::fprintf(stderr, "[sweep] cannot write checkpoint %s\n",
                   tmp.string().c_str());
      return;
    }
    os << encode_cell(key, row);
    if (!os.good()) {
      std::fprintf(stderr, "[sweep] short write on checkpoint %s\n",
                   tmp.string().c_str());
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    std::fprintf(stderr, "[sweep] checkpoint rename failed: %s\n",
                 ec.message().c_str());
}

}  // namespace

std::vector<SweepRowResult> SweepRunner::run() {
  resumed_ = 0;
  const bool checkpointing = !checkpoint_dir_.empty();
  if (checkpointing) {
    std::error_code ec;
    std::filesystem::create_directories(checkpoint_dir_, ec);
    if (ec)
      std::fprintf(stderr, "[sweep] cannot create checkpoint dir %s: %s\n",
                   checkpoint_dir_.c_str(), ec.message().c_str());
  }

  std::vector<SweepRowResult> results(rows_.size());
  std::mutex progress_mu;
  int resumed = 0;
  core::global_pool().parallel_for(rows_.size(), [&](std::size_t i) {
    const Row& row = rows_[i];
    const bool keyed = checkpointing && !row.key.empty();
    bool from_checkpoint = false;
    if (keyed) {
      if (auto cached = load_cell(cell_path(checkpoint_dir_, row.key), row.key)) {
        results[i] = std::move(*cached);
        from_checkpoint = true;
      }
    }
    if (!from_checkpoint) {
      results[i] = row.fn();
      if (keyed) store_cell(cell_path(checkpoint_dir_, row.key), row.key, results[i]);
    }
    const std::lock_guard<std::mutex> lock(progress_mu);
    if (from_checkpoint) ++resumed;
    if (progress_) progress_(results[i]);
  });
  rows_.clear();
  resumed_ = resumed;
  return results;
}

}  // namespace mersit::ptq
