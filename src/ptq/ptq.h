// Post-training quantization pipeline (paper Section 4.1).
//
// Methodology reproduced exactly:
//  * a small calibration subset is run through the FP32 model to record the
//    per-layer activation |max| (MaxCalibrator);
//  * weights are scaled per output channel by their own |max|, activations
//    per layer by the calibration |max|; the scaled values are encoded into
//    the 8-bit format under study and decoded back (fake quantization);
//  * no advanced PTQ tricks (PD-Quant, QDrop) -- plain max scaling, so that
//    accuracy differences are attributable to the formats themselves.
#pragma once

#include <atomic>
#include <unordered_map>

#include "formats/quantize.h"
#include "nn/models.h"
#include "nn/train.h"

namespace mersit::ptq {

/// Records per-quant-point activation |max| over the calibration set.
class MaxCalibrator final : public nn::QuantSession {
 public:
  void on_activation(const nn::Module& layer, nn::Tensor& t) override;

  /// Observed |max| per layer (keyed by module identity).
  std::unordered_map<const nn::Module*, float> absmax;
  float input_absmax = 0.f;

  /// Observe the model input tensor (images; token ids are not observed).
  void observe_input(const nn::Tensor& t);
};

/// Fake-quantizes every activation with the calibrated per-layer scales.
///
/// Concurrency: after construction the quantizer only reads the calibration
/// map and the shared format kernel, and each evaluation thread hands it a
/// distinct activation tensor — so it declares concurrent_safe() and the
/// evaluators fan test batches out across the thread pool.
class FakeQuantizer final : public nn::QuantSession {
 public:
  FakeQuantizer(const MaxCalibrator& calib, const formats::Format& fmt,
                formats::ScalePolicy policy);

  void on_activation(const nn::Module& layer, nn::Tensor& t) override;
  [[nodiscard]] bool concurrent_safe() const override { return true; }
  /// Quantize the model input (vision models).
  void quantize_input(nn::Tensor& t) const;

  /// Layers seen at eval time but never calibrated (should stay zero).
  [[nodiscard]] int uncalibrated_layers() const { return uncalibrated_.load(); }

 private:
  const MaxCalibrator& calib_;
  const formats::Format& fmt_;
  formats::ScalePolicy policy_;
  std::atomic<int> uncalibrated_ = 0;
};

// ---------------------------------------------------------------- weights --

/// Deep copy of every parameter value (for restoring between formats).
struct WeightSnapshot {
  std::vector<nn::Tensor> values;
};

[[nodiscard]] WeightSnapshot snapshot_weights(nn::Module& model);
void restore_weights(nn::Module& model, const WeightSnapshot& snap);

/// Per-output-channel fake quantization of every ChannelWeights module.
void quantize_weights_per_channel(nn::Module& model, const formats::Format& fmt,
                                  formats::ScalePolicy policy);

// ------------------------------------------------------------- experiment --

enum class Metric { kAccuracy, kMatthews };

struct PtqOptions {
  formats::ScalePolicy policy = formats::ScalePolicy::kMaxToUnity;
  Metric metric = Metric::kAccuracy;
  bool quantize_input = true;  ///< false for token-id inputs (BERT)
};

/// Calibrate on `calib`, quantize weights+activations into `fmt`, evaluate
/// on `test`; weights are restored afterwards.  Returns the metric in
/// percent.
[[nodiscard]] float evaluate_ptq(nn::Module& model, const nn::Dataset& calib,
                                 const nn::Dataset& test, const formats::Format& fmt,
                                 const PtqOptions& opt = {});

/// FP32 baseline with the same metric.
[[nodiscard]] float evaluate_fp32(nn::Module& model, const nn::Dataset& test,
                                  Metric metric);

// ------------------------------------------------------------------ RMSE --

/// The paper's Fig. 6 measurement: RMSE between FP32 and quantized tensors,
/// element-weighted across all weight channels and all calibration-set
/// activations.
struct RmseReport {
  double weight_rmse = 0.0;
  double activation_rmse = 0.0;
};

[[nodiscard]] RmseReport measure_ptq_rmse(nn::Module& model, const nn::Dataset& calib,
                                          const formats::Format& fmt,
                                          const PtqOptions& opt = {});

}  // namespace mersit::ptq
