// Post-training quantization pipeline (paper Section 4.1).
//
// Methodology reproduced exactly:
//  * a small calibration subset is run through the FP32 model to record the
//    per-layer activation |max| (MaxCalibrator);
//  * weights are scaled per output channel by their own |max|, activations
//    per layer by the calibration |max|; the scaled values are encoded into
//    the 8-bit format under study and decoded back (fake quantization);
//  * no advanced PTQ tricks (PD-Quant, QDrop) -- plain max scaling, so that
//    accuracy differences are attributable to the formats themselves.
//
// Calibration state is keyed on stable module *paths* (see nn::assign_paths),
// not module pointers, so a CalibrationTable is a portable artifact: save it
// once, load it into any structurally identical model instance (e.g. a
// clone() replica on another thread or another process) and evaluate.
#pragma once

#include <atomic>
#include <iosfwd>
#include <map>
#include <mutex>
#include <set>
#include <span>
#include <string>

#include "formats/quantize.h"
#include "nn/models.h"
#include "nn/train.h"

namespace mersit::ptq {

/// Portable per-layer calibration state: module path -> activation |max|,
/// plus the model-input |max|.  Keys are the stable hierarchical paths
/// assigned by nn::assign_paths, so the table can be serialized (MCT1
/// container, see serialize.h) and applied to any structurally identical
/// model instance.  std::map keeps iteration (and therefore serialization)
/// order deterministic.
struct CalibrationTable {
  std::string model_name;              ///< informational (e.g. root path)
  float input_absmax = 0.f;
  std::map<std::string, float> absmax; ///< path -> activation |max|

  /// Pointwise max-merge (order-independent): used to reduce the per-thread
  /// partial tables of the parallel calibration pass.
  void merge(const CalibrationTable& other);

  bool operator==(const CalibrationTable&) const = default;

  /// Serialize into the hardened MCT1 binary container (see serialize.cpp).
  void save(std::ostream& os) const;
  /// Parse an MCT1 container.  Hardened like QuantizedModel::load: every
  /// length is bounds-checked, payloads read in bounded chunks, and any
  /// truncated/corrupted/random stream yields std::runtime_error.
  [[nodiscard]] static CalibrationTable load(std::istream& is);
  /// Serialized size in bytes.
  [[nodiscard]] std::size_t byte_size() const;
};

/// Records per-quant-point activation |max| over the calibration set into a
/// path-keyed CalibrationTable.  Every observed module must carry a path
/// (models built by the nn factories do); observing an unpathed module is a
/// programming error and throws std::logic_error.
class MaxCalibrator final : public nn::QuantSession {
 public:
  void on_activation(const nn::Module& layer, nn::Tensor& t) override;

  /// Observe the model input tensor (images; token ids are not observed).
  void observe_input(const nn::Tensor& t);

  CalibrationTable table;
};

/// Fake-quantizes every activation with the calibrated per-layer scales.
///
/// Concurrency: after construction the quantizer only reads the calibration
/// table and the shared format kernel, and each evaluation thread hands it a
/// distinct activation tensor — so it declares concurrent_safe() and the
/// evaluators fan test batches out across the thread pool.  (The
/// uncalibrated-path set is mutex-guarded; it is touched only on the miss
/// path, which a correct pipeline never hits.)
class FakeQuantizer final : public nn::QuantSession {
 public:
  FakeQuantizer(const CalibrationTable& table, const formats::Format& fmt,
                formats::ScalePolicy policy);

  void on_activation(const nn::Module& layer, nn::Tensor& t) override;
  [[nodiscard]] bool concurrent_safe() const override { return true; }
  /// Quantize the model input (vision models).
  void quantize_input(nn::Tensor& t) const;

  /// When enabled, the evaluator's per-batch on_input hook fake-quantizes
  /// each input batch in place (replacing the old whole-dataset copy).
  /// Off by default — token-id inputs (BERT) must pass through untouched.
  void set_input_quantization(bool on) { quantize_inputs_ = on; }
  void on_input(nn::Tensor& t) override {
    if (quantize_inputs_) quantize_input(t);
  }

  /// Layers seen at eval time but never calibrated (should stay zero).
  [[nodiscard]] int uncalibrated_layers() const { return uncalibrated_.load(); }
  /// The distinct paths (or "<unpathed TypeName>") of those layers.
  [[nodiscard]] std::set<std::string> uncalibrated_paths() const;

  /// True when the format's value set is a uniform grid the SIMD level
  /// quantizer reproduces bit-for-bit, so fake quantization takes the fast
  /// path (see fake_quantize_grid in ptq.cpp).  INT8 qualifies; MERSIT /
  /// posit / FP8 grids are non-uniform and ride the codec kernel.
  [[nodiscard]] bool uniform_grid_fast_path() const { return grid_usable_; }

 private:
  void fake_quantize_grid(std::span<float> x, double scale) const;

  const CalibrationTable& table_;
  const formats::Format& fmt_;
  formats::ScalePolicy policy_;
  // Uniform-grid fast path: values are ±pitch·{0..qmax} with pitch = 2^e and
  // code parity == level parity (the tie conditions; derivation at the
  // detector in ptq.cpp).
  bool grid_usable_ = false;
  double grid_pitch_ = 0.0;
  int grid_qmax_ = 0;
  bool quantize_inputs_ = false;
  std::atomic<int> uncalibrated_ = 0;
  mutable std::mutex miss_mu_;
  std::set<std::string> missed_;
};

// ---------------------------------------------------------------- weights --

/// Deep copy of every parameter value (for restoring between formats),
/// together with each parameter's shape so a restore onto a structurally
/// different model fails loudly instead of silently misassigning tensors.
struct WeightSnapshot {
  std::vector<nn::Tensor> values;
};

[[nodiscard]] WeightSnapshot snapshot_weights(nn::Module& model);

/// Restore a snapshot.  Validates structural compatibility (parameter count
/// and every shape) *before* mutating anything; throws std::invalid_argument
/// with the offending index/shape on mismatch.
void restore_weights(nn::Module& model, const WeightSnapshot& snap);

/// Per-output-channel fake quantization of every ChannelWeights module.
void quantize_weights_per_channel(nn::Module& model, const formats::Format& fmt,
                                  formats::ScalePolicy policy);

/// Code-domain equivalent of quantize_weights_per_channel: instead of
/// rewriting the FP32 weights with their quantize→dequantize images, encode
/// them into 8-bit codes (same per-channel scales, same encode arithmetic as
/// QuantKernel::fake_quantize) and install a nn::WeightCodes view on every
/// ChannelWeights module.  Under MERSIT_QGEMM=code the layers then pack
/// GEMM operands straight from the codes; the decoded values — and therefore
/// every layer output — are bit-identical to the quantize→dequantize path.
/// The FP32 weights are left untouched (no snapshot/restore needed).
/// All-zero channels encode at scale 1.0, matching pack_weights.
void install_weight_codes(nn::Module& model, const formats::Format& fmt,
                          formats::ScalePolicy policy);

/// Remove installed code-domain weights from every ChannelWeights module;
/// layers revert to their FP32 weights.
void clear_weight_codes(nn::Module& model);

// ------------------------------------------------------------- experiment --

enum class Metric { kAccuracy, kMatthews };

struct PtqOptions {
  formats::ScalePolicy policy = formats::ScalePolicy::kMaxToUnity;
  Metric metric = Metric::kAccuracy;
  bool quantize_input = true;  ///< false for token-id inputs (BERT)
};

/// Run the calibration pass over `calib` and return the path-keyed table.
/// Batches fan out across the thread pool; the per-thread partial tables
/// merge with max(), which is order-independent, so the result is identical
/// to a serial pass.  `model_name` defaults to the model root's path.
[[nodiscard]] CalibrationTable calibrate_model(nn::Module& model,
                                               const nn::Dataset& calib,
                                               bool observe_input = true,
                                               std::string model_name = "");

/// Verify that every quant-point module of `model` has an entry in `table`,
/// by static tree walk (no forward pass, no sample data needed — the check
/// the serving engine runs before hot-swapping a calibration artifact under
/// a replica).  Stricter than the runtime pre-check in evaluate_with_table:
/// a quant point that exists but would not fire still needs an entry.
/// Throws std::runtime_error naming every missing path.
void validate_table_coverage(nn::Module& model, const CalibrationTable& table);

/// Quantize weights+activations into `fmt` using a previously built (or
/// loaded) calibration table and evaluate on `test`; weights are restored
/// afterwards.  Returns the metric in percent.
///
/// Fails loudly: before evaluating, every quant-point module of `model` must
/// have an entry in `table` — a table calibrated on a structurally different
/// model throws std::runtime_error naming the missing paths.  As a backstop,
/// any quant point that still fires uncalibrated during evaluation raises
/// the same error after weights are restored.
[[nodiscard]] float evaluate_with_table(nn::Module& model,
                                        const CalibrationTable& table,
                                        const nn::Dataset& test,
                                        const formats::Format& fmt,
                                        const PtqOptions& opt = {});

/// Calibrate on `calib`, then evaluate_with_table on `test` — the one-shot
/// convenience used by the Table-2 sweep.
[[nodiscard]] float evaluate_ptq(nn::Module& model, const nn::Dataset& calib,
                                 const nn::Dataset& test, const formats::Format& fmt,
                                 const PtqOptions& opt = {});

/// FP32 baseline with the same metric.
[[nodiscard]] float evaluate_fp32(nn::Module& model, const nn::Dataset& test,
                                  Metric metric);

// ------------------------------------------------------------------ RMSE --

/// The paper's Fig. 6 measurement: RMSE between FP32 and quantized tensors,
/// element-weighted across all weight channels and all calibration-set
/// activations.
struct RmseReport {
  double weight_rmse = 0.0;
  double activation_rmse = 0.0;
};

[[nodiscard]] RmseReport measure_ptq_rmse(nn::Module& model, const nn::Dataset& calib,
                                          const formats::Format& fmt,
                                          const PtqOptions& opt = {});

}  // namespace mersit::ptq
