// Parallel PTQ sweep runner (the Table-2 model×format grid).
//
// Two levels of parallelism compose here:
//  * rows (one model each: train → fold BN → evaluate every format) are
//    independent Module trees, so the runner fans them out across the
//    thread pool;
//  * within a row, the per-format evaluations share one mutable model
//    (weights are quantized in place and restored), so formats run serially
//    — but the PTQ hot loops inside each evaluation (calibration batches,
//    per-channel weight quantization, test batches) parallelize through the
//    same pool, which runs them inline when called from a row worker
//    (nested regions) and across threads when rows are scarce.
//
// Results come back in submission order regardless of completion order, so
// a sweep prints identical tables at any MERSIT_THREADS setting.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ptq/ptq.h"

namespace mersit::ptq {

/// Metric column per format for one model row, plus the FP32 baseline.
struct SweepRowResult {
  std::string name;
  float fp32 = 0.f;
  std::vector<float> metrics;  // one per format, in sweep order
};

/// Evaluate `model` against every format in `fmts` (serially — weights are
/// mutated in place and restored between formats), returning one metric per
/// format.  The hot loops inside each evaluation use the thread pool.
[[nodiscard]] std::vector<float> run_format_sweep(
    nn::Module& model, const nn::Dataset& calib, const nn::Dataset& test,
    const std::vector<std::shared_ptr<const formats::Format>>& fmts,
    const PtqOptions& opt = {});

/// Deferred sweep rows, executed across the pool by run().
///
/// A sweep cell (one trained model evaluated against ~11 formats) costs
/// minutes at paper sizing, so a row that dies 7/8ths of the way through a
/// grid should not forfeit the finished cells.  Rows queued through the
/// keyed add_row overload checkpoint their result as one small JSON file in
/// set_checkpoint_dir(): on a rerun the runner loads each valid cell file
/// and skips its computation entirely, recomputing only missing or corrupt
/// cells (a corrupt file is noted on stderr and overwritten).  Files are
/// written atomically (tmp + rename), so a run killed mid-write never
/// leaves a half-cell behind.
class SweepRunner {
 public:
  using RowFn = std::function<SweepRowResult()>;

  /// Queue one row (the closure owns/creates its model and must not touch
  /// state shared with other rows).
  void add_row(RowFn fn) { rows_.push_back({std::string(), std::move(fn)}); }

  /// Queue one checkpointable row.  `key` names the cell file (sanitized to
  /// [A-Za-z0-9._-]); keys must be unique per runner and stable across
  /// runs — encode everything that changes the result (model, sizing seed).
  /// Without a checkpoint dir the key is inert and the row always runs.
  void add_row(std::string key, RowFn fn) {
    rows_.push_back({std::move(key), std::move(fn)});
  }

  /// Enable checkpointing under `dir` (created if absent; "" disables).
  void set_checkpoint_dir(std::string dir) { checkpoint_dir_ = std::move(dir); }

  /// Optional progress callback, invoked (serialized) as each row finishes.
  void on_row_done(std::function<void(const SweepRowResult&)> cb) {
    progress_ = std::move(cb);
  }

  /// Run every queued row across the thread pool; results are returned in
  /// add_row() order.  Clears the queue.
  [[nodiscard]] std::vector<SweepRowResult> run();

  /// Rows satisfied from checkpoint files by the last run() (for tests and
  /// progress reporting).
  [[nodiscard]] int resumed_rows() const { return resumed_; }

 private:
  struct Row {
    std::string key;  ///< empty = never checkpointed
    RowFn fn;
  };

  std::vector<Row> rows_;
  std::string checkpoint_dir_;
  std::function<void(const SweepRowResult&)> progress_;
  int resumed_ = 0;
};

}  // namespace mersit::ptq
