#include "ptq/ptq.h"

#include <cmath>
#include <mutex>
#include <utility>
#include <vector>

#include "core/thread_pool.h"
#include "formats/kernels/kernel_cache.h"

namespace mersit::ptq {

using formats::Format;
using formats::ScalePolicy;
using nn::Dataset;
using nn::Module;
using nn::Tensor;

// ------------------------------------------------------------ calibration --

void MaxCalibrator::on_activation(const Module& layer, Tensor& t) {
  float& mx = absmax[&layer];
  mx = std::max(mx, t.abs_max());
}

void MaxCalibrator::observe_input(const Tensor& t) {
  input_absmax = std::max(input_absmax, t.abs_max());
}

FakeQuantizer::FakeQuantizer(const MaxCalibrator& calib, const Format& fmt,
                             ScalePolicy policy)
    : calib_(calib), fmt_(fmt), policy_(policy) {}

void FakeQuantizer::on_activation(const Module& layer, Tensor& t) {
  const auto it = calib_.absmax.find(&layer);
  if (it == calib_.absmax.end()) {
    ++uncalibrated_;
    return;
  }
  if (it->second <= 0.f) return;  // degenerate (all-zero) layer output
  const double scale = formats::scale_for_absmax(fmt_, it->second, policy_);
  formats::fake_quantize(t.data(), fmt_, scale);
}

void FakeQuantizer::quantize_input(Tensor& t) const {
  if (calib_.input_absmax <= 0.f) return;
  const double scale =
      formats::scale_for_absmax(fmt_, calib_.input_absmax, policy_);
  formats::fake_quantize(t.data(), fmt_, scale);
}

// ---------------------------------------------------------------- weights --

WeightSnapshot snapshot_weights(Module& model) {
  WeightSnapshot snap;
  for (const nn::Param* p : model.parameters()) snap.values.push_back(p->value);
  return snap;
}

void restore_weights(Module& model, const WeightSnapshot& snap) {
  const auto params = model.parameters();
  if (params.size() != snap.values.size())
    throw std::invalid_argument("restore_weights: parameter count mismatch");
  for (std::size_t i = 0; i < params.size(); ++i) params[i]->value = snap.values[i];
}

namespace {

/// Every (module, channel) weight span in the model, in traversal order.
std::vector<std::pair<nn::ChannelWeights*, int>> channel_jobs(Module& model) {
  std::vector<std::pair<nn::ChannelWeights*, int>> jobs;
  for (Module* m : model.modules()) {
    auto* cw = dynamic_cast<nn::ChannelWeights*>(m);
    if (cw == nullptr) continue;
    for (int c = 0; c < cw->weight_channels(); ++c) jobs.emplace_back(cw, c);
  }
  return jobs;
}

}  // namespace

void quantize_weights_per_channel(Module& model, const Format& fmt,
                                  ScalePolicy policy) {
  const auto jobs = channel_jobs(model);
  // Channels are disjoint spans, so they quantize independently across the
  // pool; the kernel is fetched once instead of per channel.
  const auto kernel = formats::kernels::kernel_for(fmt);
  core::global_pool().parallel_for(jobs.size(), [&](std::size_t i) {
    const std::span<float> w = jobs[i].first->channel_span(jobs[i].second);
    float mx = 0.f;
    for (const float v : w) mx = std::max(mx, std::fabs(v));
    if (mx <= 0.f) return;
    const double scale = formats::scale_for_absmax(fmt, mx, policy);
    kernel->fake_quantize(w, scale);
  });
}

// ------------------------------------------------------------- experiment --

namespace {

/// Run the calibration pass over `calib`.  Batches fan out across the
/// thread pool, each chunk observing into its own MaxCalibrator; the
/// per-layer maxima then merge with max(), which is order-independent, so
/// the result is identical to a serial pass.
MaxCalibrator calibrate(Module& model, const Dataset& calib, bool observe_input) {
  constexpr int kBatch = 32;
  const std::size_t batches =
      static_cast<std::size_t>((calib.size() + kBatch - 1) / kBatch);
  std::vector<MaxCalibrator> partials;
  std::mutex mu;
  core::global_pool().parallel_chunks(batches, [&](std::size_t begin,
                                                   std::size_t end) {
    MaxCalibrator local;
    const nn::Context ctx{/*train=*/false, &local};
    for (std::size_t b = begin; b < end; ++b) {
      const int start = static_cast<int>(b) * kBatch;
      const int count = std::min(kBatch, calib.size() - start);
      const Tensor xb = nn::slice_batch(calib.inputs, start, count);
      if (observe_input) local.observe_input(xb);
      (void)model.run(xb, ctx);
    }
    const std::lock_guard<std::mutex> lock(mu);
    partials.push_back(std::move(local));
  });
  MaxCalibrator cal;
  for (const MaxCalibrator& p : partials) {
    for (const auto& [layer, mx] : p.absmax) {
      float& slot = cal.absmax[layer];
      slot = std::max(slot, mx);
    }
    cal.input_absmax = std::max(cal.input_absmax, p.input_absmax);
  }
  return cal;
}

/// Dataset copy with fake-quantized inputs.
Dataset quantized_inputs(const Dataset& data, const FakeQuantizer& fq) {
  Dataset q;
  q.num_classes = data.num_classes;
  q.labels = data.labels;
  q.inputs = data.inputs;
  Tensor& t = q.inputs;
  fq.quantize_input(t);
  return q;
}

float run_metric(Module& model, const Dataset& test, Metric metric,
                 nn::QuantSession* quant) {
  return metric == Metric::kAccuracy ? nn::evaluate_accuracy(model, test, quant)
                                     : nn::evaluate_mcc(model, test, quant);
}

}  // namespace

float evaluate_ptq(Module& model, const Dataset& calib, const Dataset& test,
                   const Format& fmt, const PtqOptions& opt) {
  const MaxCalibrator cal = calibrate(model, calib, opt.quantize_input);
  const WeightSnapshot snap = snapshot_weights(model);
  quantize_weights_per_channel(model, fmt, opt.policy);
  FakeQuantizer fq(cal, fmt, opt.policy);
  const Dataset test_q =
      opt.quantize_input ? quantized_inputs(test, fq) : test;
  const float metric =
      run_metric(model, opt.quantize_input ? test_q : test, opt.metric, &fq);
  restore_weights(model, snap);
  return metric;
}

float evaluate_fp32(Module& model, const Dataset& test, Metric metric) {
  return run_metric(model, test, metric, nullptr);
}

// ------------------------------------------------------------------ RMSE --

namespace {

/// QuantSession that measures per-layer activation RMSE without mutating
/// the activations (so downstream layers see FP32 inputs).
class RmseProbe final : public nn::QuantSession {
 public:
  RmseProbe(const MaxCalibrator& calib, const Format& fmt, ScalePolicy policy)
      : calib_(calib), fmt_(fmt), policy_(policy) {}

  void on_activation(const Module& layer, Tensor& t) override {
    const auto it = calib_.absmax.find(&layer);
    if (it == calib_.absmax.end() || it->second <= 0.f) return;
    const double scale = formats::scale_for_absmax(fmt_, it->second, policy_);
    const double rmse = formats::quantization_rmse(t.data(), fmt_, scale);
    se_ += rmse * rmse * static_cast<double>(t.numel());
    count_ += static_cast<double>(t.numel());
  }

  [[nodiscard]] double rmse() const { return count_ > 0 ? std::sqrt(se_ / count_) : 0.0; }
  [[nodiscard]] double sum_squared() const { return se_; }
  [[nodiscard]] double count() const { return count_; }

 private:
  const MaxCalibrator& calib_;
  const Format& fmt_;
  ScalePolicy policy_;
  double se_ = 0.0;
  double count_ = 0.0;
};

}  // namespace

RmseReport measure_ptq_rmse(Module& model, const Dataset& calib, const Format& fmt,
                            const PtqOptions& opt) {
  RmseReport rep;
  // Weights: per-channel squared errors computed across the pool, reduced in
  // channel order so the report is independent of the thread count.
  const auto jobs = channel_jobs(model);
  const auto kernel = formats::kernels::kernel_for(fmt);
  std::vector<std::pair<double, double>> per_channel(jobs.size(), {0.0, 0.0});
  core::global_pool().parallel_for(jobs.size(), [&](std::size_t i) {
    const std::span<const float> w = jobs[i].first->channel_span(jobs[i].second);
    float mx = 0.f;
    for (const float v : w) mx = std::max(mx, std::fabs(v));
    if (mx <= 0.f) return;
    const double scale = formats::scale_for_absmax(fmt, mx, opt.policy);
    const double rmse = kernel->quantization_rmse(w, scale);
    per_channel[i] = {rmse * rmse * static_cast<double>(w.size()),
                      static_cast<double>(w.size())};
  });
  double se = 0.0, n = 0.0;
  for (const auto& [cse, cn] : per_channel) {
    se += cse;
    n += cn;
  }
  rep.weight_rmse = n > 0 ? std::sqrt(se / n) : 0.0;

  // Activations: calibrate, then probe on the same set.  Each batch probes
  // into its own RmseProbe and the per-batch partials reduce in batch order,
  // so the reduction tree — and therefore the result, to the last bit — is
  // the same for any thread count or chunk split.
  const MaxCalibrator cal = calibrate(model, calib, opt.quantize_input);
  constexpr int kBatch = 32;
  const std::size_t batches =
      static_cast<std::size_t>((calib.size() + kBatch - 1) / kBatch);
  struct Partial {
    double se = 0.0;
    double count = 0.0;
  };
  std::vector<Partial> partials(batches);  // one per batch
  core::global_pool().parallel_chunks(batches, [&](std::size_t begin,
                                                   std::size_t end) {
    for (std::size_t b = begin; b < end; ++b) {
      RmseProbe probe(cal, fmt, opt.policy);
      const nn::Context ctx{/*train=*/false, &probe};
      const int start = static_cast<int>(b) * kBatch;
      const int count = std::min(kBatch, calib.size() - start);
      (void)model.run(nn::slice_batch(calib.inputs, start, count), ctx);
      partials[b] = {probe.sum_squared(), probe.count()};
    }
  });
  double ase = 0.0, acount = 0.0;
  for (const Partial& p : partials) {
    ase += p.se;
    acount += p.count;
  }
  rep.activation_rmse = acount > 0 ? std::sqrt(ase / acount) : 0.0;
  return rep;
}

}  // namespace mersit::ptq
