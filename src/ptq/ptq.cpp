#include "ptq/ptq.h"

#include <cmath>

namespace mersit::ptq {

using formats::Format;
using formats::ScalePolicy;
using nn::Dataset;
using nn::Module;
using nn::Tensor;

// ------------------------------------------------------------ calibration --

void MaxCalibrator::on_activation(const Module& layer, Tensor& t) {
  float& mx = absmax[&layer];
  mx = std::max(mx, t.abs_max());
}

void MaxCalibrator::observe_input(const Tensor& t) {
  input_absmax = std::max(input_absmax, t.abs_max());
}

FakeQuantizer::FakeQuantizer(const MaxCalibrator& calib, const Format& fmt,
                             ScalePolicy policy)
    : calib_(calib), fmt_(fmt), policy_(policy) {}

void FakeQuantizer::on_activation(const Module& layer, Tensor& t) {
  const auto it = calib_.absmax.find(&layer);
  if (it == calib_.absmax.end()) {
    ++uncalibrated_;
    return;
  }
  if (it->second <= 0.f) return;  // degenerate (all-zero) layer output
  const double scale = formats::scale_for_absmax(fmt_, it->second, policy_);
  formats::fake_quantize(t.data(), fmt_, scale);
}

void FakeQuantizer::quantize_input(Tensor& t) const {
  if (calib_.input_absmax <= 0.f) return;
  const double scale =
      formats::scale_for_absmax(fmt_, calib_.input_absmax, policy_);
  formats::fake_quantize(t.data(), fmt_, scale);
}

// ---------------------------------------------------------------- weights --

WeightSnapshot snapshot_weights(Module& model) {
  WeightSnapshot snap;
  for (const nn::Param* p : model.parameters()) snap.values.push_back(p->value);
  return snap;
}

void restore_weights(Module& model, const WeightSnapshot& snap) {
  const auto params = model.parameters();
  if (params.size() != snap.values.size())
    throw std::invalid_argument("restore_weights: parameter count mismatch");
  for (std::size_t i = 0; i < params.size(); ++i) params[i]->value = snap.values[i];
}

void quantize_weights_per_channel(Module& model, const Format& fmt,
                                  ScalePolicy policy) {
  for (Module* m : model.modules()) {
    auto* cw = dynamic_cast<nn::ChannelWeights*>(m);
    if (cw == nullptr) continue;
    for (int c = 0; c < cw->weight_channels(); ++c) {
      const std::span<float> w = cw->channel_span(c);
      float mx = 0.f;
      for (const float v : w) mx = std::max(mx, std::fabs(v));
      if (mx <= 0.f) continue;
      const double scale = formats::scale_for_absmax(fmt, mx, policy);
      formats::fake_quantize(w, fmt, scale);
    }
  }
}

// ------------------------------------------------------------- experiment --

namespace {

/// Run the calibration pass over `calib`.
MaxCalibrator calibrate(Module& model, const Dataset& calib, bool observe_input) {
  MaxCalibrator cal;
  const nn::Context ctx{/*train=*/false, &cal};
  constexpr int kBatch = 32;
  for (int start = 0; start < calib.size(); start += kBatch) {
    const int count = std::min(kBatch, calib.size() - start);
    const Tensor xb = nn::slice_batch(calib.inputs, start, count);
    if (observe_input) cal.observe_input(xb);
    (void)model.run(xb, ctx);
  }
  return cal;
}

/// Dataset copy with fake-quantized inputs.
Dataset quantized_inputs(const Dataset& data, const FakeQuantizer& fq) {
  Dataset q;
  q.num_classes = data.num_classes;
  q.labels = data.labels;
  q.inputs = data.inputs;
  Tensor& t = q.inputs;
  fq.quantize_input(t);
  return q;
}

float run_metric(Module& model, const Dataset& test, Metric metric,
                 nn::QuantSession* quant) {
  return metric == Metric::kAccuracy ? nn::evaluate_accuracy(model, test, quant)
                                     : nn::evaluate_mcc(model, test, quant);
}

}  // namespace

float evaluate_ptq(Module& model, const Dataset& calib, const Dataset& test,
                   const Format& fmt, const PtqOptions& opt) {
  const MaxCalibrator cal = calibrate(model, calib, opt.quantize_input);
  const WeightSnapshot snap = snapshot_weights(model);
  quantize_weights_per_channel(model, fmt, opt.policy);
  FakeQuantizer fq(cal, fmt, opt.policy);
  const Dataset test_q =
      opt.quantize_input ? quantized_inputs(test, fq) : test;
  const float metric =
      run_metric(model, opt.quantize_input ? test_q : test, opt.metric, &fq);
  restore_weights(model, snap);
  return metric;
}

float evaluate_fp32(Module& model, const Dataset& test, Metric metric) {
  return run_metric(model, test, metric, nullptr);
}

// ------------------------------------------------------------------ RMSE --

namespace {

/// QuantSession that measures per-layer activation RMSE without mutating
/// the activations (so downstream layers see FP32 inputs).
class RmseProbe final : public nn::QuantSession {
 public:
  RmseProbe(const MaxCalibrator& calib, const Format& fmt, ScalePolicy policy)
      : calib_(calib), fmt_(fmt), policy_(policy) {}

  void on_activation(const Module& layer, Tensor& t) override {
    const auto it = calib_.absmax.find(&layer);
    if (it == calib_.absmax.end() || it->second <= 0.f) return;
    const double scale = formats::scale_for_absmax(fmt_, it->second, policy_);
    const double rmse = formats::quantization_rmse(t.data(), fmt_, scale);
    se_ += rmse * rmse * static_cast<double>(t.numel());
    count_ += static_cast<double>(t.numel());
  }

  [[nodiscard]] double rmse() const { return count_ > 0 ? std::sqrt(se_ / count_) : 0.0; }

 private:
  const MaxCalibrator& calib_;
  const Format& fmt_;
  ScalePolicy policy_;
  double se_ = 0.0;
  double count_ = 0.0;
};

}  // namespace

RmseReport measure_ptq_rmse(Module& model, const Dataset& calib, const Format& fmt,
                            const PtqOptions& opt) {
  RmseReport rep;
  // Weights.
  double se = 0.0, n = 0.0;
  for (Module* m : model.modules()) {
    auto* cw = dynamic_cast<nn::ChannelWeights*>(m);
    if (cw == nullptr) continue;
    for (int c = 0; c < cw->weight_channels(); ++c) {
      const std::span<const float> w = cw->channel_span(c);
      float mx = 0.f;
      for (const float v : w) mx = std::max(mx, std::fabs(v));
      if (mx <= 0.f) continue;
      const double scale = formats::scale_for_absmax(fmt, mx, opt.policy);
      const double rmse = formats::quantization_rmse(w, fmt, scale);
      se += rmse * rmse * static_cast<double>(w.size());
      n += static_cast<double>(w.size());
    }
  }
  rep.weight_rmse = n > 0 ? std::sqrt(se / n) : 0.0;

  // Activations: calibrate, then probe on the same set.
  const MaxCalibrator cal = calibrate(model, calib, opt.quantize_input);
  RmseProbe probe(cal, fmt, opt.policy);
  const nn::Context ctx{/*train=*/false, &probe};
  constexpr int kBatch = 32;
  for (int start = 0; start < calib.size(); start += kBatch) {
    const int count = std::min(kBatch, calib.size() - start);
    (void)model.run(nn::slice_batch(calib.inputs, start, count), ctx);
  }
  rep.activation_rmse = probe.rmse();
  return rep;
}

}  // namespace mersit::ptq
