#include "ptq/ptq.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/thread_pool.h"
#include "formats/kernels/kernel_cache.h"
#include "nn/gemm/qgemm.h"
#include "nn/qweights.h"

namespace mersit::ptq {

using formats::Format;
using formats::ScalePolicy;
using nn::Dataset;
using nn::Module;
using nn::Tensor;

// ------------------------------------------------------------ calibration --

void CalibrationTable::merge(const CalibrationTable& other) {
  for (const auto& [path, mx] : other.absmax) {
    float& slot = absmax[path];
    slot = std::max(slot, mx);
  }
  input_absmax = std::max(input_absmax, other.input_absmax);
  if (model_name.empty()) model_name = other.model_name;
}

void MaxCalibrator::on_activation(const Module& layer, Tensor& t) {
  const std::string& path = layer.path();
  if (path.empty())
    throw std::logic_error(
        "MaxCalibrator: quant point '" + layer.name() +
        "' has no module path; run nn::assign_paths on the model root "
        "(the nn model factories do this) before calibrating");
  float& mx = table.absmax[path];
  mx = std::max(mx, t.abs_max());
}

void MaxCalibrator::observe_input(const Tensor& t) {
  table.input_absmax = std::max(table.input_absmax, t.abs_max());
}

namespace {

// Uniform-grid detector for the fake-quantize fast path.  The codec kernel
// rounds a magnitude to the nearest positive value with ties to the even
// CODE; the SIMD level quantizer (nn::gemm::quantize_levels) rounds to the
// nearest integer LEVEL with ties to the even level.  The two agree
// bit-for-bit iff:
//   - the positive values are exactly pitch·{1..qmax} (contiguous grid), so
//     nearest-value == nearest-level;
//   - pitch is a power of two, so the grid midpoints pitch·(l+0.5) are exact
//     doubles and dividing the scaled element by the pitch commutes with
//     double rounding (pure exponent shift);
//   - each positive level's code has the level's parity, so "even code" is
//     "even level" (this also forces level 1's code odd, making the
//     underflow tie at pitch/2 round to zero — RNE's choice);
//   - magnitudes below pitch/2 round to zero (underflows_to_zero), and the
//     zero code decodes to +0.0 so the zero level's output matches exactly.
// INT8 passes; MERSIT/posit/FP8 grids are non-uniform and fall out at the
// contiguity check.
struct UniformGrid {
  bool usable = false;
  double pitch = 0.0;
  int qmax = 0;
};

UniformGrid detect_uniform_grid(const Format& fmt) {
  UniformGrid g;
  if (!fmt.underflows_to_zero()) return g;
  const formats::TableCodec& codec = fmt.codec();
  if (std::bit_cast<std::uint64_t>(codec.decode(codec.zero_code())) != 0)
    return g;
  const std::vector<formats::TableCodec::Entry>& pos = codec.positives();
  if (pos.empty() || pos.size() > 127) return g;  // levels must fit int8
  const double s = pos.front().value;
  int exp = 0;
  if (std::frexp(s, &exp) != 0.5) return g;  // power-of-two pitch only
  for (std::size_t i = 0; i < pos.size(); ++i) {
    if (pos[i].value != s * static_cast<double>(i + 1)) return g;
    if ((pos[i].code & 1u) != ((i + 1) & 1u)) return g;
  }
  g.usable = true;
  g.pitch = s;
  g.qmax = static_cast<int>(pos.size());
  return g;
}

}  // namespace

FakeQuantizer::FakeQuantizer(const CalibrationTable& table, const Format& fmt,
                             ScalePolicy policy)
    : table_(table), fmt_(fmt), policy_(policy) {
  const UniformGrid g = detect_uniform_grid(fmt);
  grid_usable_ = g.usable;
  grid_pitch_ = g.pitch;
  grid_qmax_ = g.qmax;
}

void FakeQuantizer::fake_quantize_grid(std::span<float> x,
                                       double scale) const {
  // Per-level outputs: float((pitch·l)·scale).  pitch·l is exact (power-of-
  // two pitch, |l| <= 127) and equals the codec's stored value for level l,
  // so this is the same double product + float cast the codec kernel
  // evaluates per element — computed once per level instead.
  const int qmax = grid_qmax_;
  float out[255];
  for (int l = -qmax; l <= qmax; ++l)
    out[l + qmax] =
        static_cast<float>((grid_pitch_ * static_cast<double>(l)) * scale);
  // (1/scale)/pitch is exact (exponent shift), so the single fused product
  // x·inv_lvl rounds to the same double as the kernel's x·(1/scale) scaled
  // down by the pitch — the rounding decision, ties included, is identical.
  const double inv_lvl = (1.0 / scale) / grid_pitch_;
  constexpr std::size_t kChunk = 4096;
  std::int8_t lv[kChunk];
  for (std::size_t i = 0; i < x.size(); i += kChunk) {
    const std::size_t c = std::min(kChunk, x.size() - i);
    nn::gemm::quantize_levels(x.data() + i, c, inv_lvl, -qmax, qmax, lv);
    for (std::size_t j = 0; j < c; ++j)
      x[i + j] = out[lv[j] + qmax];
  }
}

void FakeQuantizer::on_activation(const Module& layer, Tensor& t) {
  const std::string& path = layer.path();
  const auto it = table_.absmax.find(path);
  if (path.empty() || it == table_.absmax.end()) {
    ++uncalibrated_;
    const std::lock_guard<std::mutex> lock(miss_mu_);
    missed_.insert(path.empty() ? "<unpathed " + layer.name() + ">" : path);
    return;
  }
  if (it->second <= 0.f) return;  // degenerate (all-zero) layer output
  const double scale = formats::scale_for_absmax(fmt_, it->second, policy_);
  if (grid_usable_)
    fake_quantize_grid(t.data(), scale);
  else
    formats::fake_quantize(t.data(), fmt_, scale);
  // Every element is now code_value * scale for some 8-bit code; stamp the
  // scale so the Kulisch GEMM mode can recover the codes by re-encoding.
  t.set_quant_scale(scale);
}

std::set<std::string> FakeQuantizer::uncalibrated_paths() const {
  const std::lock_guard<std::mutex> lock(miss_mu_);
  return missed_;
}

void FakeQuantizer::quantize_input(Tensor& t) const {
  if (table_.input_absmax <= 0.f) return;
  const double scale =
      formats::scale_for_absmax(fmt_, table_.input_absmax, policy_);
  if (grid_usable_)
    fake_quantize_grid(t.data(), scale);
  else
    formats::fake_quantize(t.data(), fmt_, scale);
  t.set_quant_scale(scale);
}

// ---------------------------------------------------------------- weights --

WeightSnapshot snapshot_weights(Module& model) {
  WeightSnapshot snap;
  for (const nn::Param* p : model.parameters()) snap.values.push_back(p->value);
  return snap;
}

namespace {

std::string shape_str(const std::vector<int>& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i)
    os << (i > 0 ? "," : "") << shape[i];
  os << ']';
  return os.str();
}

}  // namespace

void restore_weights(Module& model, const WeightSnapshot& snap) {
  const auto params = model.parameters();
  // Validate the whole structure up front: nothing is mutated unless every
  // parameter matches, so a mismatched restore can never leave the model
  // half-overwritten.
  if (params.size() != snap.values.size())
    throw std::invalid_argument(
        "restore_weights: parameter count mismatch (model has " +
        std::to_string(params.size()) + ", snapshot has " +
        std::to_string(snap.values.size()) + ")");
  for (std::size_t i = 0; i < params.size(); ++i)
    if (params[i]->value.shape() != snap.values[i].shape())
      throw std::invalid_argument(
          "restore_weights: shape mismatch at parameter " + std::to_string(i) +
          " (model " + shape_str(params[i]->value.shape()) + ", snapshot " +
          shape_str(snap.values[i].shape()) + ")");
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->value = snap.values[i];
    params[i]->bump_version();  // invalidate prepacked-weight caches
  }
}

namespace {

/// Every (module, channel) weight span in the model, in traversal order.
std::vector<std::pair<nn::ChannelWeights*, int>> channel_jobs(Module& model) {
  std::vector<std::pair<nn::ChannelWeights*, int>> jobs;
  for (Module* m : model.modules()) {
    auto* cw = dynamic_cast<nn::ChannelWeights*>(m);
    if (cw == nullptr) continue;
    for (int c = 0; c < cw->weight_channels(); ++c) jobs.emplace_back(cw, c);
  }
  return jobs;
}

}  // namespace

void quantize_weights_per_channel(Module& model, const Format& fmt,
                                  ScalePolicy policy) {
  const auto jobs = channel_jobs(model);
  // Channels are disjoint spans, so they quantize independently across the
  // pool; the kernel is fetched once instead of per channel.
  const auto kernel = formats::kernels::kernel_for(fmt);
  core::global_pool().parallel_for(jobs.size(), [&](std::size_t i) {
    const std::span<float> w = jobs[i].first->channel_span(jobs[i].second);
    float mx = 0.f;
    for (const float v : w) mx = std::max(mx, std::fabs(v));
    if (mx <= 0.f) return;
    const double scale = formats::scale_for_absmax(fmt, mx, policy);
    kernel->fake_quantize(w, scale);
  });
  // One bump per mutated weight Param, after the fan-out: prepacked-GEMM
  // caches built from the FP32 weights must not survive into the quantized
  // evaluation.
  for (Module* m : model.modules())
    if (auto* cw = dynamic_cast<nn::ChannelWeights*>(m))
      cw->weight_param().bump_version();
}

void install_weight_codes(Module& model, const Format& fmt,
                          ScalePolicy policy) {
  const auto kernel = formats::kernels::kernel_for(fmt);
  // The decode LUT and its Kulisch decomposition depend only on the format;
  // build them once and share across every module's WeightCodes.
  double lut[256];
  for (int c = 0; c < 256; ++c) lut[c] = kernel->decode(static_cast<std::uint8_t>(c));
  auto kulisch = std::make_shared<nn::gemm::KulischTable>(
      nn::gemm::build_kulisch_table(lut));
  const std::shared_ptr<const nn::gemm::KulischTable> shared_kulisch =
      kulisch->usable ? kulisch : nullptr;
  auto affine = std::make_shared<nn::gemm::AffineLut>(
      nn::gemm::build_affine_lut(lut));
  const std::shared_ptr<const nn::gemm::AffineLut> shared_affine =
      affine->usable ? affine : nullptr;
  for (Module* m : model.modules()) {
    auto* cw = dynamic_cast<nn::ChannelWeights*>(m);
    if (cw == nullptr) continue;
    const int channels = cw->weight_channels();
    if (channels <= 0) continue;
    auto wc = std::make_shared<nn::WeightCodes>();
    wc->format_name = fmt.name();
    wc->channels = channels;
    wc->per_channel = static_cast<int>(cw->channel_span(0).size());
    wc->codes.reserve(static_cast<std::size_t>(channels) * wc->per_channel);
    wc->scales.reserve(static_cast<std::size_t>(channels));
    for (int c = 0; c < 256; ++c) wc->lut[c] = lut[c];
    for (int c = 0; c < channels; ++c) {
      const std::span<const float> w = cw->channel_span(c);
      float mx = 0.f;
      for (const float v : w) mx = std::max(mx, std::fabs(v));
      // Same scale selection as quantize_weights_per_channel; degenerate
      // all-zero channels take scale 1.0 like pack_weights does.
      const double scale =
          mx > 0.f ? formats::scale_for_absmax(fmt, mx, policy) : 1.0;
      wc->scales.push_back(scale);
      // encode(v * (1/scale)) is exactly the argument fake_quantize feeds
      // the codec, so decode(code) * scale reproduces its output bit for
      // bit.
      const double inv = 1.0 / scale;
      for (const float v : w)
        wc->codes.push_back(kernel->encode(static_cast<double>(v) * inv));
    }
    wc->encode = [kernel](double v) { return kernel->encode(v); };
    wc->kulisch = shared_kulisch;
    wc->affine = shared_affine;
    wc->nonfinite = 0;  // encode saturates; it never emits non-finite codes
    cw->set_weight_codes(std::move(wc));
  }
}

void clear_weight_codes(Module& model) {
  for (Module* m : model.modules())
    if (auto* cw = dynamic_cast<nn::ChannelWeights*>(m)) cw->clear_weight_codes();
}

// ------------------------------------------------------------- experiment --

namespace {

float run_metric(Module& model, const Dataset& test, Metric metric,
                 nn::QuantSession* quant) {
  return metric == Metric::kAccuracy ? nn::evaluate_accuracy(model, test, quant)
                                     : nn::evaluate_mcc(model, test, quant);
}

/// Observes which quant points fire and which of them lack a table entry —
/// used by the cheap single-sample pre-check in evaluate_with_table.
class CoverageCheckSession final : public nn::QuantSession {
 public:
  explicit CoverageCheckSession(const CalibrationTable& table) : table_(table) {}
  void on_activation(const Module& layer, Tensor& t) override {
    (void)t;
    const std::string& path = layer.path();
    if (path.empty())
      missing_.insert("<unpathed " + layer.name() + ">");
    else if (table_.absmax.find(path) == table_.absmax.end())
      missing_.insert(path);
  }
  [[nodiscard]] const std::set<std::string>& missing() const { return missing_; }

 private:
  const CalibrationTable& table_;
  std::set<std::string> missing_;
};

[[noreturn]] void throw_uncalibrated(const char* who,
                                     const std::set<std::string>& paths,
                                     const CalibrationTable& table,
                                     const char* when) {
  std::ostringstream os;
  os << who << ": " << paths.size() << " quant point(s) " << when
     << " have no entry in the calibration table";
  if (!table.model_name.empty()) os << " (table calibrated on '" << table.model_name << "')";
  os << ':';
  for (const std::string& p : paths) os << ' ' << p;
  throw std::runtime_error(os.str());
}

}  // namespace

CalibrationTable calibrate_model(Module& model, const Dataset& calib,
                                 bool observe_input, std::string model_name) {
  // Batches fan out across the thread pool, each chunk observing into its
  // own MaxCalibrator; the per-layer maxima then merge with max(), which is
  // order-independent, so the result is identical to a serial pass.
  constexpr int kBatch = 32;
  const std::size_t batches =
      static_cast<std::size_t>((calib.size() + kBatch - 1) / kBatch);
  std::vector<CalibrationTable> partials;
  std::mutex mu;
  core::global_pool().parallel_chunks(batches, [&](std::size_t begin,
                                                   std::size_t end) {
    MaxCalibrator local;
    const nn::Context ctx{/*train=*/false, &local};
    for (std::size_t b = begin; b < end; ++b) {
      const int start = static_cast<int>(b) * kBatch;
      const int count = std::min(kBatch, calib.size() - start);
      const Tensor xb = nn::slice_batch(calib.inputs, start, count);
      if (observe_input) local.observe_input(xb);
      (void)model.run(xb, ctx);
    }
    const std::lock_guard<std::mutex> lock(mu);
    partials.push_back(std::move(local.table));
  });
  CalibrationTable table;
  for (const CalibrationTable& p : partials) table.merge(p);
  table.model_name = model_name.empty() ? model.path() : std::move(model_name);
  return table;
}

void validate_table_coverage(Module& model, const CalibrationTable& table) {
  std::set<std::string> missing;
  for (Module* m : model.modules()) {
    if (!m->quant_point()) continue;
    const std::string& path = m->path();
    if (path.empty())
      missing.insert("<unpathed " + m->name() + ">");
    else if (table.absmax.find(path) == table.absmax.end())
      missing.insert(path);
  }
  if (!missing.empty()) throw_uncalibrated("validate_table_coverage", missing, table,
                                      "in this model");
}

float evaluate_with_table(Module& model, const CalibrationTable& table,
                          const Dataset& test, const Format& fmt,
                          const PtqOptions& opt) {
  // Cheap pre-check: run one sample through the model and verify every
  // firing quant point has a calibration entry, so a table from a different
  // architecture is rejected before the (expensive) quantized evaluation.
  if (test.size() > 0) {
    CoverageCheckSession cover(table);
    const nn::Context ctx{/*train=*/false, &cover};
    (void)model.run(nn::slice_batch(test.inputs, 0, 1), ctx);
    if (!cover.missing().empty())
      throw_uncalibrated("evaluate_with_table", cover.missing(), table,
                         "in this model");
  }
  FakeQuantizer fq(table, fmt, opt.policy);
  // Inputs are fake-quantized per batch via the evaluator's on_input hook —
  // no second copy of the dataset is ever materialized.
  fq.set_input_quantization(opt.quantize_input);
  float metric = 0.f;
  if (nn::gemm::qgemm_mode() != nn::gemm::QgemmMode::kFloat) {
    // Code-domain weights: encode into 8-bit codes (the FP32 weights stay
    // untouched — no snapshot/restore) and let the layers pack GEMM
    // operands straight from them.  Decoded values are bit-identical to
    // the quantize→dequantize path, so the metric is identical too.
    install_weight_codes(model, fmt, opt.policy);
    try {
      metric = run_metric(model, test, opt.metric, &fq);
    } catch (...) {
      clear_weight_codes(model);
      throw;
    }
    clear_weight_codes(model);
  } else {
    const WeightSnapshot snap = snapshot_weights(model);
    quantize_weights_per_channel(model, fmt, opt.policy);
    metric = run_metric(model, test, opt.metric, &fq);
    restore_weights(model, snap);
  }
  // Backstop for anything the single-sample pre-check could not see (e.g.
  // data-dependent control flow): never report a metric computed with
  // silently unquantized activations.
  if (fq.uncalibrated_layers() > 0)
    throw_uncalibrated("evaluate_with_table", fq.uncalibrated_paths(), table,
                       "fired during evaluation but");
  return metric;
}

float evaluate_ptq(Module& model, const Dataset& calib, const Dataset& test,
                   const Format& fmt, const PtqOptions& opt) {
  const CalibrationTable table = calibrate_model(model, calib, opt.quantize_input);
  return evaluate_with_table(model, table, test, fmt, opt);
}

float evaluate_fp32(Module& model, const Dataset& test, Metric metric) {
  return run_metric(model, test, metric, nullptr);
}

// ------------------------------------------------------------------ RMSE --

namespace {

/// QuantSession that measures per-layer activation RMSE without mutating
/// the activations (so downstream layers see FP32 inputs).
class RmseProbe final : public nn::QuantSession {
 public:
  RmseProbe(const CalibrationTable& table, const Format& fmt, ScalePolicy policy)
      : table_(table), fmt_(fmt), policy_(policy) {}

  void on_activation(const Module& layer, Tensor& t) override {
    const auto it = table_.absmax.find(layer.path());
    if (it == table_.absmax.end() || it->second <= 0.f) return;
    const double scale = formats::scale_for_absmax(fmt_, it->second, policy_);
    const double rmse = formats::quantization_rmse(t.data(), fmt_, scale);
    se_ += rmse * rmse * static_cast<double>(t.numel());
    count_ += static_cast<double>(t.numel());
  }

  [[nodiscard]] double rmse() const { return count_ > 0 ? std::sqrt(se_ / count_) : 0.0; }
  [[nodiscard]] double sum_squared() const { return se_; }
  [[nodiscard]] double count() const { return count_; }

 private:
  const CalibrationTable& table_;
  const Format& fmt_;
  ScalePolicy policy_;
  double se_ = 0.0;
  double count_ = 0.0;
};

}  // namespace

RmseReport measure_ptq_rmse(Module& model, const Dataset& calib, const Format& fmt,
                            const PtqOptions& opt) {
  RmseReport rep;
  // Weights: per-channel squared errors computed across the pool, reduced in
  // channel order so the report is independent of the thread count.
  const auto jobs = channel_jobs(model);
  const auto kernel = formats::kernels::kernel_for(fmt);
  std::vector<std::pair<double, double>> per_channel(jobs.size(), {0.0, 0.0});
  core::global_pool().parallel_for(jobs.size(), [&](std::size_t i) {
    const std::span<const float> w = jobs[i].first->channel_span(jobs[i].second);
    float mx = 0.f;
    for (const float v : w) mx = std::max(mx, std::fabs(v));
    if (mx <= 0.f) return;
    const double scale = formats::scale_for_absmax(fmt, mx, opt.policy);
    const double rmse = kernel->quantization_rmse(w, scale);
    per_channel[i] = {rmse * rmse * static_cast<double>(w.size()),
                      static_cast<double>(w.size())};
  });
  double se = 0.0, n = 0.0;
  for (const auto& [cse, cn] : per_channel) {
    se += cse;
    n += cn;
  }
  rep.weight_rmse = n > 0 ? std::sqrt(se / n) : 0.0;

  // Activations: calibrate, then probe on the same set.  Each batch probes
  // into its own RmseProbe and the per-batch partials reduce in batch order,
  // so the reduction tree — and therefore the result, to the last bit — is
  // the same for any thread count or chunk split.
  const CalibrationTable table = calibrate_model(model, calib, opt.quantize_input);
  constexpr int kBatch = 32;
  const std::size_t batches =
      static_cast<std::size_t>((calib.size() + kBatch - 1) / kBatch);
  struct Partial {
    double se = 0.0;
    double count = 0.0;
  };
  std::vector<Partial> partials(batches);  // one per batch
  core::global_pool().parallel_chunks(batches, [&](std::size_t begin,
                                                   std::size_t end) {
    for (std::size_t b = begin; b < end; ++b) {
      RmseProbe probe(table, fmt, opt.policy);
      const nn::Context ctx{/*train=*/false, &probe};
      const int start = static_cast<int>(b) * kBatch;
      const int count = std::min(kBatch, calib.size() - start);
      (void)model.run(nn::slice_batch(calib.inputs, start, count), ctx);
      partials[b] = {probe.sum_squared(), probe.count()};
    }
  });
  double ase = 0.0, acount = 0.0;
  for (const Partial& p : partials) {
    ase += p.se;
    acount += p.count;
  }
  rep.activation_rmse = acount > 0 ? std::sqrt(ase / acount) : 0.0;
  return rep;
}

}  // namespace mersit::ptq
