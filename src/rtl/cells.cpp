#include "rtl/cells.h"

namespace mersit::rtl {

const CellLibrary& CellLibrary::nangate45_like() {
  static const CellLibrary lib = [] {
    CellLibrary l;
    auto set = [&l](CellType t, double area, double energy, double leak) {
      l.specs_[static_cast<int>(t)] = CellSpec{area, energy, leak};
    };
    set(CellType::kConst0, 0.0, 0.0, 0.0);
    set(CellType::kConst1, 0.0, 0.0, 0.0);
    set(CellType::kInput, 0.0, 0.0, 0.0);
    set(CellType::kBuf, 1.06, 0.6, 0.012);
    set(CellType::kInv, 0.80, 0.4, 0.008);
    set(CellType::kAnd2, 1.33, 0.9, 0.016);
    set(CellType::kOr2, 1.33, 0.9, 0.016);
    set(CellType::kNand2, 1.06, 0.6, 0.012);
    set(CellType::kNor2, 1.06, 0.6, 0.012);
    set(CellType::kXor2, 2.13, 1.6, 0.026);
    set(CellType::kXnor2, 2.13, 1.6, 0.026);
    set(CellType::kMux2, 2.39, 1.4, 0.028);
    set(CellType::kDff, 4.52, 2.8, 0.055);
    return l;
  }();
  return lib;
}

double CellLibrary::area_um2(const Netlist& nl) const {
  double a = 0.0;
  for (const Gate& g : nl.gates()) a += spec(g.type).area_um2;
  return a;
}

std::vector<double> CellLibrary::area_by_group_um2(const Netlist& nl) const {
  std::vector<double> by(nl.group_names().size(), 0.0);
  for (const Gate& g : nl.gates()) by[g.group] += spec(g.type).area_um2;
  return by;
}

double CellLibrary::leakage_uw(const Netlist& nl) const {
  double nw = 0.0;
  for (const Gate& g : nl.gates()) nw += spec(g.type).leakage_nw;
  return nw * 1e-3;
}

int logic_depth(const Netlist& nl) {
  // Depth per net; creation order is topological for combinational logic.
  std::vector<int> depth(nl.net_count(), 0);
  int worst = 0;
  for (const Gate& g : nl.gates()) {
    switch (g.type) {
      case CellType::kConst0:
      case CellType::kConst1:
      case CellType::kInput:
        depth[g.out] = 0;
        break;
      case CellType::kDff:
        // Q is a path source; the path INTO d is scored when d's driver ran.
        depth[g.out] = 0;
        break;
      default: {
        int d = depth[g.a];
        if (cell_input_count(g.type) >= 2) d = std::max(d, static_cast<int>(depth[g.b]));
        if (g.type == CellType::kMux2) d = std::max(d, static_cast<int>(depth[g.s]));
        depth[g.out] = d + 1;
        worst = std::max(worst, d + 1);
        break;
      }
    }
  }
  // Include paths terminating at DFF inputs (register->register).
  for (const std::size_t idx : nl.dff_gate_indices())
    worst = std::max(worst, depth[nl.gates()[idx].a]);
  return worst;
}

}  // namespace mersit::rtl
