// Gate-level fault models for resilience campaigns.
//
// A FaultPlan describes defects to superimpose on a simulated netlist:
//  * stuck-at faults permanently force a net to 0 or 1 (manufacturing
//    defects, latent wear-out);
//  * transient faults flip the value driven onto a net for the duration of
//    one clock cycle (SEU-style single-event upsets on datapath nets).
//
// Plans are pure data; the Simulator applies them (sim.h).  An empty plan
// is guaranteed to leave simulation bit-identical to a fault-free run,
// including toggle statistics, so instrumented campaigns can share one code
// path with golden runs.
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/netlist.h"

namespace mersit::rtl {

struct FaultPlan {
  struct StuckAt {
    NetId net = 0;
    bool value = false;  ///< forced level
  };
  /// Single-cycle bit flip: the value driven onto `net` is inverted during
  /// cycle `cycle` (cycle N = the interval settled by the N-th clock edge;
  /// the constructor's initial settle and everything before the first
  /// clock() is cycle 0).
  struct Transient {
    std::uint64_t cycle = 0;
    NetId net = 0;
  };

  std::vector<StuckAt> stuck;
  std::vector<Transient> transients;

  [[nodiscard]] bool empty() const { return stuck.empty() && transients.empty(); }
};

}  // namespace mersit::rtl
