// Gate-level fault models for resilience campaigns.
//
// A FaultPlan describes defects to superimpose on a simulated netlist:
//  * stuck-at faults permanently force a net to 0 or 1 (manufacturing
//    defects, latent wear-out);
//  * transient faults flip the value driven onto a net for the duration of
//    one clock cycle (SEU-style single-event upsets on datapath nets).
//
// Plans are pure data; the Simulator applies them (sim.h) and copies them
// at install time, so a plan may be destroyed or mutated the moment
// set_fault_plan(s) returns.  An empty plan is guaranteed to leave
// simulation bit-identical to a fault-free run, including toggle
// statistics, so instrumented campaigns can share one code path with
// golden runs.
//
// Lane-masked application: the 64-wide simulator compiles installed plans
// into three per-net lane words —
//  * stuck_mask (which lanes have a stuck-at on this net),
//  * stuck_val  (the forced level for those lanes), and
//  * flip       (lanes whose driven value is inverted this cycle) —
// and intercepts every value driven onto a net with the branch-free
//   ((v & ~stuck_mask) | stuck_val) ^ flip.
// set_fault_plan(p) sets every lane's mask bits from one plan;
// set_fault_plans(ps) gives lane L the masks of ps[L] only, so up to 64
// *independent* fault injections run in one simulation, each lane
// bit-identical to the scalar run that installs its plan alone.  Within a
// lane, the last StuckAt listed for a net wins; transient flips on the
// same (net, cycle) XOR together (a pair cancels).  Primary inputs hold
// their level between set_input calls, so the simulator applies transient
// flips to held input lanes when the scheduled cycle begins and removes
// them when it ends.
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/netlist.h"

namespace mersit::rtl {

struct FaultPlan {
  struct StuckAt {
    NetId net = 0;
    bool value = false;  ///< forced level
  };
  /// Single-cycle bit flip: the value driven onto `net` is inverted during
  /// cycle `cycle` (cycle N = the interval settled by the N-th clock edge;
  /// the constructor's initial settle and everything before the first
  /// clock() is cycle 0).
  struct Transient {
    std::uint64_t cycle = 0;
    NetId net = 0;
  };

  std::vector<StuckAt> stuck;
  std::vector<Transient> transients;

  [[nodiscard]] bool empty() const { return stuck.empty() && transients.empty(); }
};

}  // namespace mersit::rtl
