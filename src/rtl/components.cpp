#include "rtl/components.h"

#include <stdexcept>

namespace mersit::rtl {

Bus constant_bus(Netlist& nl, std::uint64_t value, int width) {
  Bus b;
  b.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) b.push_back(nl.constant(((value >> i) & 1u) != 0));
  return b;
}

Bus zero_extend(Netlist& nl, const Bus& a, int width) {
  Bus b = a;
  b.resize(static_cast<std::size_t>(width), nl.constant(false));
  if (static_cast<int>(a.size()) > width) b.resize(static_cast<std::size_t>(width));
  return b;
}

Bus sign_extend(const Bus& a, int width) {
  if (a.empty()) throw std::invalid_argument("sign_extend: empty bus");
  Bus b = a;
  b.resize(static_cast<std::size_t>(width), a.back());
  if (static_cast<int>(a.size()) > width) b.resize(static_cast<std::size_t>(width));
  return b;
}

namespace {

/// Balanced binary reduction (logarithmic depth, as synthesis would build).
NetId tree_reduce(Netlist& nl, Bus level, CellType op) {
  while (level.size() > 1) {
    Bus next;
    next.reserve(level.size() / 2 + 1);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(nl.gate(op, level[i], level[i + 1]));
    if (level.size() % 2 != 0) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

}  // namespace

NetId and_reduce(Netlist& nl, const Bus& a) {
  if (a.empty()) return nl.constant(true);
  return tree_reduce(nl, a, CellType::kAnd2);
}

NetId or_reduce(Netlist& nl, const Bus& a) {
  if (a.empty()) return nl.constant(false);
  return tree_reduce(nl, a, CellType::kOr2);
}

Bus bus_and(Netlist& nl, const Bus& a, NetId enable) {
  Bus out;
  out.reserve(a.size());
  for (const NetId n : a) out.push_back(nl.and2(n, enable));
  return out;
}

Bus bus_xor(Netlist& nl, const Bus& a, NetId flip) {
  Bus out;
  out.reserve(a.size());
  for (const NetId n : a) out.push_back(nl.xor2(n, flip));
  return out;
}

Bus bus_invert(Netlist& nl, const Bus& a) {
  Bus out;
  out.reserve(a.size());
  for (const NetId n : a) out.push_back(nl.inv(n));
  return out;
}

Bus bus_mux(Netlist& nl, NetId sel, const Bus& lo, const Bus& hi) {
  if (lo.size() != hi.size()) throw std::invalid_argument("bus_mux: width mismatch");
  Bus out;
  out.reserve(lo.size());
  for (std::size_t i = 0; i < lo.size(); ++i) out.push_back(nl.mux2(sel, lo[i], hi[i]));
  return out;
}

SumCarry half_adder(Netlist& nl, NetId a, NetId b) {
  return {nl.xor2(a, b), nl.and2(a, b)};
}

SumCarry full_adder(Netlist& nl, NetId a, NetId b, NetId cin) {
  const NetId axb = nl.xor2(a, b);
  const NetId sum = nl.xor2(axb, cin);
  const NetId carry = nl.or2(nl.and2(a, b), nl.and2(axb, cin));
  return {sum, carry};
}

Bus ripple_add(Netlist& nl, const Bus& a, const Bus& b, NetId cin, bool keep_carry) {
  if (a.size() != b.size()) throw std::invalid_argument("ripple_add: width mismatch");
  Bus out;
  out.reserve(a.size() + 1);
  NetId carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const SumCarry sc = full_adder(nl, a[i], b[i], carry);
    out.push_back(sc.sum);
    carry = sc.carry;
  }
  if (keep_carry) out.push_back(carry);
  return out;
}

Bus add_signed(Netlist& nl, const Bus& a, const Bus& b) {
  const int w = static_cast<int>(std::max(a.size(), b.size())) + 1;
  return ripple_add(nl, sign_extend(a, w), sign_extend(b, w), nl.constant(false));
}

Bus sub_signed(Netlist& nl, const Bus& a, const Bus& b) {
  const int w = static_cast<int>(std::max(a.size(), b.size())) + 1;
  return ripple_add(nl, sign_extend(a, w), bus_invert(nl, sign_extend(b, w)),
                    nl.constant(true));
}

Bus negate_if(Netlist& nl, const Bus& a, NetId neg) {
  // ~a + neg when neg, else a: XOR with neg then add neg as carry-in.
  const Bus flipped = bus_xor(nl, a, neg);
  return ripple_add(nl, flipped, constant_bus(nl, 0, static_cast<int>(a.size())), neg);
}

Bus array_multiply(Netlist& nl, const Bus& a, const Bus& b) {
  const std::size_t wa = a.size(), wb = b.size();
  if (wa == 0 || wb == 0) throw std::invalid_argument("array_multiply: empty bus");
  // Carry-save array of partial products, reduced row by row.
  Bus acc = bus_and(nl, a, b[0]);                     // row 0
  acc.resize(wa + wb, nl.constant(false));
  for (std::size_t j = 1; j < wb; ++j) {
    const Bus pp = bus_and(nl, a, b[j]);              // partial product row j
    NetId carry = nl.constant(false);
    for (std::size_t i = 0; i < wa; ++i) {
      const SumCarry sc = full_adder(nl, acc[j + i], pp[i], carry);
      acc[j + i] = sc.sum;
      carry = sc.carry;
    }
    // Propagate the final carry into the remaining high bits.
    for (std::size_t i = j + wa; i < wa + wb && carry != nl.constant(false); ++i) {
      const SumCarry sc = half_adder(nl, acc[i], carry);
      acc[i] = sc.sum;
      carry = sc.carry;
    }
  }
  return acc;
}

Bus barrel_shift_left(Netlist& nl, const Bus& a, const Bus& sh, int result_width) {
  Bus cur = zero_extend(nl, a, result_width);
  for (std::size_t stage = 0; stage < sh.size(); ++stage) {
    const int amount = 1 << stage;
    if (amount >= result_width) {
      // Shifting by >= width would clear the bus when selected.
      cur = bus_and(nl, cur, nl.inv(sh[stage]));
      continue;
    }
    Bus shifted(cur.size(), nl.constant(false));
    for (int i = amount; i < result_width; ++i) shifted[static_cast<std::size_t>(i)] =
        cur[static_cast<std::size_t>(i - amount)];
    cur = bus_mux(nl, sh[stage], cur, shifted);
  }
  return cur;
}

Bus one_hot_constant_select(Netlist& nl, const std::vector<NetId>& sels,
                            const std::vector<std::uint64_t>& constants, int width) {
  if (sels.size() != constants.size())
    throw std::invalid_argument("one_hot_constant_select: size mismatch");
  Bus out;
  out.reserve(static_cast<std::size_t>(width));
  for (int bit = 0; bit < width; ++bit) {
    Bus terms;
    for (std::size_t i = 0; i < sels.size(); ++i) {
      if ((constants[i] >> bit) & 1u) terms.push_back(sels[i]);
    }
    out.push_back(or_reduce(nl, terms));
  }
  return out;
}

NetId equals_const(Netlist& nl, const Bus& a, std::uint64_t value) {
  Bus matched;
  matched.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool bit = ((value >> i) & 1u) != 0;
    matched.push_back(bit ? a[i] : nl.inv(a[i]));
  }
  return and_reduce(nl, matched);
}

}  // namespace mersit::rtl
