// Structural gate-level netlist.
//
// This is the substrate substituting for the paper's Verilog + Design
// Compiler flow: hardware blocks are built as explicit gate graphs from a
// small primitive cell set, costed with a 45nm-like standard-cell library
// (cells.h) and simulated cycle-accurately with toggle counting (sim.h).
//
// Construction order doubles as topological order: a gate's inputs must
// already exist when the gate is created, so combinational evaluation is a
// single in-order pass.  Sequential loops are closed only through DFFs,
// whose outputs are sources for combinational evaluation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mersit::rtl {

using NetId = std::uint32_t;

/// A bit-vector of nets, least-significant bit first.
using Bus = std::vector<NetId>;

enum class CellType : std::uint8_t {
  kConst0,
  kConst1,
  kInput,
  kBuf,
  kInv,
  kAnd2,
  kOr2,
  kNand2,
  kNor2,
  kXor2,
  kXnor2,
  kMux2,  ///< out = s ? b : a
  kDff,   ///< out = registered d (input `a`)
};

/// Number of logic inputs a cell type consumes.
[[nodiscard]] int cell_input_count(CellType t);
[[nodiscard]] const char* cell_type_name(CellType t);

struct Gate {
  CellType type = CellType::kConst0;
  NetId a = 0;       ///< first input (d for DFF)
  NetId b = 0;       ///< second input
  NetId s = 0;       ///< select input (MUX2 only)
  NetId out = 0;     ///< driven net
  std::uint16_t group = 0;  ///< index into Netlist::group_names()
};

/// A named primary-input port: `bus` is the nets it drives, LSB first.
/// input() records a 1-bit port; input_bus() records one multi-bit port
/// (not one port per bit).  The Verilog emitter (verilog.h) turns these
/// into the module's input declarations.
struct InputPort {
  std::string name;
  Bus bus;
};

class Netlist {
 public:
  Netlist();

  // --- construction -------------------------------------------------------
  [[nodiscard]] NetId constant(bool value) const { return value ? one_ : zero_; }
  NetId input(const std::string& name);
  Bus input_bus(const std::string& name, int width);

  NetId gate(CellType type, NetId a, NetId b = 0);
  NetId buf(NetId a) { return gate(CellType::kBuf, a); }
  NetId inv(NetId a) { return gate(CellType::kInv, a); }
  NetId and2(NetId a, NetId b) { return gate(CellType::kAnd2, a, b); }
  NetId or2(NetId a, NetId b) { return gate(CellType::kOr2, a, b); }
  NetId nand2(NetId a, NetId b) { return gate(CellType::kNand2, a, b); }
  NetId nor2(NetId a, NetId b) { return gate(CellType::kNor2, a, b); }
  NetId xor2(NetId a, NetId b) { return gate(CellType::kXor2, a, b); }
  NetId xnor2(NetId a, NetId b) { return gate(CellType::kXnor2, a, b); }
  /// 2:1 multiplexer: returns `sel ? hi : lo`.
  NetId mux2(NetId sel, NetId lo, NetId hi);
  /// D flip-flop; the returned net is the registered output Q.
  NetId dff(NetId d);

  /// D flip-flop whose D input is connected later with bind_dff(); enables
  /// feedback loops (e.g. an accumulator register feeding its own adder).
  NetId dff_unbound();
  void bind_dff(NetId q, NetId d);

  // --- component grouping (for per-component area/power breakdown) --------
  /// Subsequent gates are attributed to `name` until pop_group().
  void push_group(const std::string& name);
  void pop_group();
  [[nodiscard]] const std::vector<std::string>& group_names() const {
    return group_names_;
  }

  // --- introspection -------------------------------------------------------
  [[nodiscard]] std::size_t net_count() const { return net_count_; }
  [[nodiscard]] const std::vector<Gate>& gates() const { return gates_; }
  [[nodiscard]] const std::vector<NetId>& inputs() const { return inputs_; }
  /// Named input ports in declaration order (see InputPort).
  [[nodiscard]] const std::vector<InputPort>& input_ports() const {
    return input_ports_;
  }
  [[nodiscard]] const std::vector<std::size_t>& dff_gate_indices() const {
    return dffs_;
  }
  /// Number of gates excluding constants/inputs (i.e. costed cells).
  [[nodiscard]] std::size_t cell_count() const;

 private:
  NetId new_net();
  NetId input_net();

  std::size_t net_count_ = 0;
  std::vector<Gate> gates_;
  std::vector<NetId> inputs_;
  std::vector<InputPort> input_ports_;
  std::vector<std::size_t> dffs_;
  std::vector<std::string> group_names_;
  std::vector<std::uint16_t> group_stack_;
  NetId zero_ = 0;
  NetId one_ = 0;
};

}  // namespace mersit::rtl
