// Reusable structural components: adders, multipliers, shifters, reducers.
//
// All buses are LSB-first.  Signed buses are two's complement.
#pragma once

#include <cstdint>

#include "rtl/netlist.h"

namespace mersit::rtl {

/// `width` constant-valued nets (low bits of `value`).
[[nodiscard]] Bus constant_bus(Netlist& nl, std::uint64_t value, int width);

/// Zero-extend (or truncate) to `width`.
[[nodiscard]] Bus zero_extend(Netlist& nl, const Bus& a, int width);
/// Sign-extend (or truncate) to `width`.
[[nodiscard]] Bus sign_extend(const Bus& a, int width);

/// AND / OR reduction over all bits.
[[nodiscard]] NetId and_reduce(Netlist& nl, const Bus& a);
[[nodiscard]] NetId or_reduce(Netlist& nl, const Bus& a);

/// Bitwise ops.
[[nodiscard]] Bus bus_and(Netlist& nl, const Bus& a, NetId enable);
[[nodiscard]] Bus bus_xor(Netlist& nl, const Bus& a, NetId flip);
[[nodiscard]] Bus bus_invert(Netlist& nl, const Bus& a);

/// Bus-wide 2:1 mux: `sel ? hi : lo` (widths must match).
[[nodiscard]] Bus bus_mux(Netlist& nl, NetId sel, const Bus& lo, const Bus& hi);

/// Full adder from primitive gates; returns {sum, carry}.
struct SumCarry {
  NetId sum;
  NetId carry;
};
[[nodiscard]] SumCarry full_adder(Netlist& nl, NetId a, NetId b, NetId cin);
[[nodiscard]] SumCarry half_adder(Netlist& nl, NetId a, NetId b);

/// Ripple-carry addition of equal-width buses; result has the same width
/// (carry-out discarded) unless `keep_carry`.
[[nodiscard]] Bus ripple_add(Netlist& nl, const Bus& a, const Bus& b, NetId cin,
                             bool keep_carry = false);

/// a + b for two's-complement buses of any widths; result width
/// max(w_a, w_b) + 1 (never overflows).
[[nodiscard]] Bus add_signed(Netlist& nl, const Bus& a, const Bus& b);

/// a - b, two's complement, result width max(w_a, w_b) + 1.
[[nodiscard]] Bus sub_signed(Netlist& nl, const Bus& a, const Bus& b);

/// Conditionally negate a two's-complement bus (same width).
[[nodiscard]] Bus negate_if(Netlist& nl, const Bus& a, NetId neg);

/// Unsigned array multiplier; result width w_a + w_b.
[[nodiscard]] Bus array_multiply(Netlist& nl, const Bus& a, const Bus& b);

/// Logical left shift of `a` into a `result_width` window by the unsigned
/// amount bus `sh` (barrel shifter; stages = bits of `sh`).  Bits shifted
/// past the top are discarded; vacated bits are zero.
[[nodiscard]] Bus barrel_shift_left(Netlist& nl, const Bus& a, const Bus& sh,
                                    int result_width);

/// One-hot selector network: out = OR_i (sel[i] AND constants[i]), i.e. pick
/// a constant by one-hot select signals.  Exactly one sel is expected high;
/// if none is, the output is 0.  Used for the "k x (2^es - 1)" unit.
[[nodiscard]] Bus one_hot_constant_select(Netlist& nl,
                                          const std::vector<NetId>& sels,
                                          const std::vector<std::uint64_t>& constants,
                                          int width);

/// Equality comparison against a constant.
[[nodiscard]] NetId equals_const(Netlist& nl, const Bus& a, std::uint64_t value);

}  // namespace mersit::rtl
