#include "rtl/netlist.h"

#include <stdexcept>

namespace mersit::rtl {

int cell_input_count(CellType t) {
  switch (t) {
    case CellType::kConst0:
    case CellType::kConst1:
    case CellType::kInput:
      return 0;
    case CellType::kBuf:
    case CellType::kInv:
    case CellType::kDff:
      return 1;
    case CellType::kAnd2:
    case CellType::kOr2:
    case CellType::kNand2:
    case CellType::kNor2:
    case CellType::kXor2:
    case CellType::kXnor2:
      return 2;
    case CellType::kMux2:
      return 3;
  }
  return 0;
}

const char* cell_type_name(CellType t) {
  switch (t) {
    case CellType::kConst0: return "CONST0";
    case CellType::kConst1: return "CONST1";
    case CellType::kInput: return "INPUT";
    case CellType::kBuf: return "BUF";
    case CellType::kInv: return "INV";
    case CellType::kAnd2: return "AND2";
    case CellType::kOr2: return "OR2";
    case CellType::kNand2: return "NAND2";
    case CellType::kNor2: return "NOR2";
    case CellType::kXor2: return "XOR2";
    case CellType::kXnor2: return "XNOR2";
    case CellType::kMux2: return "MUX2";
    case CellType::kDff: return "DFF";
  }
  return "?";
}

Netlist::Netlist() {
  group_names_.push_back("top");
  group_stack_.push_back(0);
  Gate g0{CellType::kConst0, 0, 0, 0, new_net(), 0};
  zero_ = g0.out;
  gates_.push_back(g0);
  Gate g1{CellType::kConst1, 0, 0, 0, new_net(), 0};
  one_ = g1.out;
  gates_.push_back(g1);
}

NetId Netlist::new_net() { return static_cast<NetId>(net_count_++); }

NetId Netlist::input_net() {
  Gate g{CellType::kInput, 0, 0, 0, new_net(), group_stack_.back()};
  gates_.push_back(g);
  inputs_.push_back(g.out);
  return g.out;
}

NetId Netlist::input(const std::string& name) {
  const NetId net = input_net();
  input_ports_.push_back({name, Bus{net}});
  return net;
}

Bus Netlist::input_bus(const std::string& name, int width) {
  Bus bus;
  bus.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) bus.push_back(input_net());
  input_ports_.push_back({name, bus});
  return bus;
}

NetId Netlist::gate(CellType type, NetId a, NetId b) {
  if (a >= net_count_ || (cell_input_count(type) >= 2 && b >= net_count_))
    throw std::logic_error("Netlist::gate: input net does not exist yet");
  // Constant folding keeps generated structures lean, mirroring the trivial
  // optimizations any synthesis tool performs.
  const bool a0 = a == zero_, a1 = a == one_, b0 = b == zero_, b1 = b == one_;
  switch (type) {
    case CellType::kBuf:
      return a;
    case CellType::kInv:
      if (a0) return one_;
      if (a1) return zero_;
      break;
    case CellType::kAnd2:
      if (a0 || b0) return zero_;
      if (a1) return b;
      if (b1) return a;
      if (a == b) return a;
      break;
    case CellType::kOr2:
      if (a1 || b1) return one_;
      if (a0) return b;
      if (b0) return a;
      if (a == b) return a;
      break;
    case CellType::kNand2:
      if (a0 || b0) return one_;
      if (a1) return gate(CellType::kInv, b);
      if (b1) return gate(CellType::kInv, a);
      break;
    case CellType::kNor2:
      if (a1 || b1) return zero_;
      if (a0) return gate(CellType::kInv, b);
      if (b0) return gate(CellType::kInv, a);
      break;
    case CellType::kXor2:
      if (a0) return b;
      if (b0) return a;
      if (a1) return gate(CellType::kInv, b);
      if (b1) return gate(CellType::kInv, a);
      if (a == b) return zero_;
      break;
    case CellType::kXnor2:
      if (a1) return b;
      if (b1) return a;
      if (a0) return gate(CellType::kInv, b);
      if (b0) return gate(CellType::kInv, a);
      if (a == b) return one_;
      break;
    default:
      break;
  }
  Gate g{type, a, b, 0, new_net(), group_stack_.back()};
  gates_.push_back(g);
  if (type == CellType::kDff) dffs_.push_back(gates_.size() - 1);
  return g.out;
}

NetId Netlist::mux2(NetId sel, NetId lo, NetId hi) {
  if (sel == zero_) return lo;
  if (sel == one_) return hi;
  if (lo == hi) return lo;
  if (lo == zero_ && hi == one_) return sel;
  if (lo == one_ && hi == zero_) return gate(CellType::kInv, sel);
  if (lo == zero_) return and2(sel, hi);
  if (hi == one_) return or2(sel, lo);
  if (hi == zero_) return and2(gate(CellType::kInv, sel), lo);
  if (lo == one_) return or2(gate(CellType::kInv, sel), hi);
  Gate g{CellType::kMux2, lo, hi, sel, new_net(), group_stack_.back()};
  gates_.push_back(g);
  return g.out;
}

NetId Netlist::dff(NetId d) { return gate(CellType::kDff, d); }

NetId Netlist::dff_unbound() {
  Gate g{CellType::kDff, constant(false), 0, 0, new_net(), group_stack_.back()};
  gates_.push_back(g);
  dffs_.push_back(gates_.size() - 1);
  return g.out;
}

void Netlist::bind_dff(NetId q, NetId d) {
  if (d >= net_count_) throw std::logic_error("bind_dff: unknown d net");
  for (const std::size_t idx : dffs_) {
    if (gates_[idx].out == q) {
      gates_[idx].a = d;
      return;
    }
  }
  throw std::logic_error("bind_dff: q is not a DFF output");
}

void Netlist::push_group(const std::string& name) {
  for (std::size_t i = 0; i < group_names_.size(); ++i) {
    if (group_names_[i] == name) {
      group_stack_.push_back(static_cast<std::uint16_t>(i));
      return;
    }
  }
  group_names_.push_back(name);
  group_stack_.push_back(static_cast<std::uint16_t>(group_names_.size() - 1));
}

void Netlist::pop_group() {
  if (group_stack_.size() <= 1)
    throw std::logic_error("Netlist::pop_group: stack underflow");
  group_stack_.pop_back();
}

std::size_t Netlist::cell_count() const {
  std::size_t n = 0;
  for (const Gate& g : gates_) {
    if (g.type != CellType::kConst0 && g.type != CellType::kConst1 &&
        g.type != CellType::kInput)
      ++n;
  }
  return n;
}

}  // namespace mersit::rtl
