// Structural Verilog export for rtl::Netlist.
//
// Bridges this repo's in-memory gate graphs to real EDA flows: the emitted
// module can be linted/compiled with iverilog, synthesized with yosys or
// Design Compiler, and cross-checked against the paper's reported areas.
// The output is deterministic — identical netlist in, byte-identical .v
// out — so decoder/MAC designs can be pinned by golden-snapshot tests
// (tests/rtl/test_verilog.cpp).
//
// Mapping:
//  * named input ports (Netlist::input_ports) become `input`/`input [w-1:0]`
//    declarations; multi-bit ports are indexed LSB-first (`code[0]` is the
//    first net of the bus);
//  * every combinational gate becomes one continuous assign of the
//    equivalent boolean expression (`assign n42 = ~(n17 & n23);`);
//  * DFFs become `reg` nets updated in a single `always @(posedge clk)`
//    block with nonblocking assigns (a `clk` port is added exactly when the
//    netlist has DFFs);
//  * caller-chosen output ports are concatenation assigns from the named
//    output buses;
//  * internal nets are named `n<id>` after their NetId; constants fold to
//    `1'b0`/`1'b1` literals (no constant nets are declared);
//  * component-group transitions appear as `// group: <name>` comments.
#pragma once

#include <span>
#include <string>

#include "rtl/netlist.h"

namespace mersit::rtl {

/// A named output port of the emitted module; `bus` lists nets LSB first.
/// Any net is allowed (gate outputs, DFF outputs, inputs, constants).
struct VerilogPort {
  std::string name;
  Bus bus;
};

/// Render `nl` as a structural Verilog module.  Port names are sanitized
/// to Verilog identifiers; throws std::invalid_argument on an empty or
/// colliding port list or an out-of-range output net.
[[nodiscard]] std::string to_verilog(const Netlist& nl,
                                     const std::string& module_name,
                                     std::span<const VerilogPort> outputs);

}  // namespace mersit::rtl
