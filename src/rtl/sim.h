// Cycle-accurate 2-value logic simulator with per-gate toggle counting.
//
// Because netlist construction order is topological for the combinational
// part (see netlist.h), evaluation is a single in-order sweep.  DFF outputs
// act as sources during eval() and are updated by clock().
//
// Toggle counts drive the activity-based power model: the paper extracts
// power "using PrimeTime PX with the average value obtained from actual DNN
// data"; here the same quantized data streams are replayed through the gate
// graph and every output transition is charged the cell's switching energy.
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/cells.h"
#include "rtl/netlist.h"

namespace mersit::rtl {

class Simulator {
 public:
  explicit Simulator(const Netlist& nl);

  void set_input(NetId net, bool value);
  /// Drive `bus` (LSB first) with the low bits of `value`.
  void set_input_bus(const Bus& bus, std::uint64_t value);

  /// Settle all combinational logic (DFF outputs unchanged).
  void eval();
  /// Rising clock edge: latch every DFF's D into Q.  Call after eval();
  /// combinational nets are re-settled automatically.
  void clock();

  [[nodiscard]] bool get(NetId net) const { return value_[net]; }
  [[nodiscard]] std::uint64_t get_bus(const Bus& bus) const;
  /// Sign-extended read of a two's-complement bus.
  [[nodiscard]] std::int64_t get_bus_signed(const Bus& bus) const;

  /// Clear toggle statistics (e.g. after reset/warm-up cycles).
  void reset_stats();
  [[nodiscard]] std::uint64_t total_toggles() const;
  /// Switching energy accumulated since reset_stats(), in fJ.
  [[nodiscard]] double dynamic_energy_fj(const CellLibrary& lib) const;
  /// Energy per component group, in fJ.
  [[nodiscard]] std::vector<double> dynamic_energy_by_group_fj(
      const CellLibrary& lib) const;

 private:
  void eval_gate(const Gate& g);

  const Netlist& nl_;
  std::vector<std::uint8_t> value_;          // per net
  std::vector<std::uint64_t> toggles_;       // per gate
};

}  // namespace mersit::rtl
