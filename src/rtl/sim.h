// Cycle-accurate 2-value logic simulator with per-gate toggle counting.
//
// Because netlist construction order is topological for the combinational
// part (see netlist.h), evaluation is a single in-order sweep.  DFF outputs
// act as sources during eval() and are updated by clock().
//
// Toggle counts drive the activity-based power model: the paper extracts
// power "using PrimeTime PX with the average value obtained from actual DNN
// data"; here the same quantized data streams are replayed through the gate
// graph and every output transition is charged the cell's switching energy.
//
// Fault injection (fault.h): an installed FaultPlan forces stuck-at levels
// and single-cycle transient flips onto arbitrary nets.  Faults intercept
// the value *driven* onto a net — by a gate, a DFF, or set_input — so
// downstream logic and toggle accounting see the corrupted level exactly as
// real silicon would.  Primary-input nets, which nothing re-drives between
// set_input calls, have transient flips applied directly to their held
// level when the scheduled cycle begins and removed when it ends.  With no
// plan (or an empty one) the simulator is bit-identical, toggles included,
// to the uninstrumented original.
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/cells.h"
#include "rtl/fault.h"
#include "rtl/netlist.h"

namespace mersit::rtl {

class Simulator {
 public:
  explicit Simulator(const Netlist& nl);

  void set_input(NetId net, bool value);
  /// Drive `bus` (LSB first) with the low bits of `value`.
  void set_input_bus(const Bus& bus, std::uint64_t value);

  /// Settle all combinational logic (DFF outputs unchanged).
  void eval();
  /// Rising clock edge: latch every DFF's D into Q.  Call after eval();
  /// combinational nets are re-settled automatically.
  void clock();

  [[nodiscard]] bool get(NetId net) const { return value_[net]; }
  [[nodiscard]] std::uint64_t get_bus(const Bus& bus) const;
  /// Sign-extended read of a two's-complement bus.
  [[nodiscard]] std::int64_t get_bus_signed(const Bus& bus) const;

  /// Clear toggle statistics (e.g. after reset/warm-up cycles).
  void reset_stats();
  [[nodiscard]] std::uint64_t total_toggles() const;
  /// Switching energy accumulated since reset_stats(), in fJ.
  [[nodiscard]] double dynamic_energy_fj(const CellLibrary& lib) const;
  /// Energy per component group, in fJ.
  [[nodiscard]] std::vector<double> dynamic_energy_by_group_fj(
      const CellLibrary& lib) const;

  // --- fault injection ------------------------------------------------------
  /// Install `plan`.  Stuck-at levels are forced onto the affected nets
  /// immediately (without charging toggles; call eval() to propagate).
  /// Transients take effect when their cycle arrives.  The plan is copied.
  void set_fault_plan(const FaultPlan& plan);
  void clear_fault_plan();
  /// Number of clock() edges applied so far (transient cycles count from 0
  /// at construction; see FaultPlan::Transient).
  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }

 private:
  void eval_gate(const Gate& g);
  /// Value actually appearing on `net` when `v` is driven onto it.
  [[nodiscard]] std::uint8_t faulted(NetId net, std::uint8_t v) const {
    const std::uint8_t s = stuck_[net];
    if (s != kFree) return s & 1u;
    return v ^ flip_[net];
  }
  void rebuild_transients();

  static constexpr std::uint8_t kFree = 0xFF;

  const Netlist& nl_;
  std::vector<std::uint8_t> value_;          // per net
  std::vector<std::uint64_t> toggles_;       // per gate

  bool has_faults_ = false;
  std::uint64_t cycle_ = 0;
  FaultPlan plan_;
  std::vector<std::uint8_t> stuck_;          // per net: kFree, 0, or 1
  std::vector<std::uint8_t> flip_;           // per net: 1 while a transient is live
  std::vector<std::uint8_t> flip_scratch_;   // per net: next cycle's flip set
  std::vector<std::uint8_t> input_net_;      // per net: 1 if a primary input
};

}  // namespace mersit::rtl
