// Bit-parallel (64-wide) cycle-accurate 2-value logic simulator with
// per-gate toggle counting.
//
// Every net holds one uint64_t of state: bit L is the net's value in lane L,
// so a single in-order sweep over the gate list (construction order is
// topological, see netlist.h) settles 64 independent stimulus vectors at
// once with word-wise boolean ops — the classic bit-parallel logic-sim
// trick, worth ~64x over the old uint8_t-per-net scalar sweep.  DFF outputs
// act as sources during eval() and are updated by clock(); each lane
// carries its own independent register state, so a 64-lane run is exactly
// 64 scalar machines in lockstep.
//
// Toggle counts drive the activity-based power model: the paper extracts
// power "using PrimeTime PX with the average value obtained from actual DNN
// data"; here the quantized data streams are replayed through the gate
// graph and every output transition in an *active* lane is charged the
// cell's switching energy — toggles_[g] += popcount((prev ^ next) & mask).
// A batched run therefore reports exactly the summed toggles of the
// per-lane scalar runs it replaces (pinned by tests/rtl/test_sim.cpp).
//
// Lane discipline:
//  * lane_count() starts at 1.  The scalar API (set_input / get / get_bus)
//    drives ALL lanes with the same value and reads lane 0, so a
//    lane_count()==1 simulator is bit-identical — values and toggle
//    counts — to the historical scalar simulator.
//  * set_lane_count(n) masks toggle accounting to lanes [0, n).  All lanes
//    start from the same settled reset state and only diverge through the
//    batched entry points (set_input_lanes / set_input_bus_lanes) or
//    per-lane fault plans, so growing the lane count is always safe.
//  * inactive lanes still compute (word ops are free) but never charge
//    toggles; their register state advances with whatever is on their
//    inputs, so batched replays that shrink the lane count for a tail
//    chunk should park inactive lanes on a zero/no-op stimulus.
//
// Fault injection (fault.h): installed FaultPlans force stuck-at levels and
// single-cycle transient flips onto arbitrary nets through per-lane masks.
// set_fault_plan(plan) applies one plan to every lane; set_fault_plans(ps)
// gives lane L its own plan ps[L], which is what lets the gate-level
// campaigns classify 64 independent injections per simulation.  Faults
// intercept the value *driven* onto a net — by a gate, a DFF, or
// set_input — so downstream logic and toggle accounting see the corrupted
// level exactly as real silicon would.  Primary-input nets, which nothing
// re-drives between set_input calls, have transient flips applied directly
// to their held lanes when the scheduled cycle begins and removed when it
// ends.  Plans are copied at install time (the caller's FaultPlan may be
// destroyed or reused immediately).  With no plan (or an empty one) the
// simulator is bit-identical, toggles included, to the uninstrumented
// original.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rtl/cells.h"
#include "rtl/fault.h"
#include "rtl/netlist.h"

namespace mersit::rtl {

class Simulator {
 public:
  /// Width of the bit-parallel datapath: independent stimulus lanes per net.
  static constexpr int kLanes = 64;

  explicit Simulator(const Netlist& nl);

  // --- lane control ---------------------------------------------------------
  /// Restrict toggle accounting to lanes [0, lanes).  1..kLanes.
  void set_lane_count(int lanes);
  [[nodiscard]] int lane_count() const { return lane_count_; }

  // --- scalar compatibility API (drives every lane, reads lane 0) ----------
  void set_input(NetId net, bool value);
  /// Drive `bus` (LSB first) with the low bits of `value` on every lane.
  void set_input_bus(const Bus& bus, std::uint64_t value);
  [[nodiscard]] bool get(NetId net) const { return (value_[net] & 1u) != 0; }
  [[nodiscard]] std::uint64_t get_bus(const Bus& bus) const;
  /// Sign-extended read of a two's-complement bus (lane 0).
  [[nodiscard]] std::int64_t get_bus_signed(const Bus& bus) const;

  // --- batched (per-lane) API ----------------------------------------------
  /// Drive one net with 64 per-lane values (bit L = lane L).
  void set_input_lanes(NetId net, std::uint64_t lanes);
  /// Drive `bus` (LSB first) with one value per lane: lane L takes the low
  /// bits of `lane_values[L]`.  Lanes at and beyond lane_values.size() are
  /// driven with 0 — batched replays should pass a full kLanes-wide span
  /// with explicit padding (e.g. a format's zero code) when the tail of a
  /// stream leaves lanes idle.
  void set_input_bus_lanes(const Bus& bus, std::span<const std::uint64_t> lane_values);
  /// Raw 64-lane word of one net.
  [[nodiscard]] std::uint64_t get_lanes(NetId net) const { return value_[net]; }
  [[nodiscard]] bool get_lane(NetId net, int lane) const {
    return ((value_[net] >> lane) & 1u) != 0;
  }
  [[nodiscard]] std::uint64_t get_bus_lane(const Bus& bus, int lane) const;
  [[nodiscard]] std::int64_t get_bus_signed_lane(const Bus& bus, int lane) const;

  // --- evaluation -----------------------------------------------------------
  /// Settle all combinational logic (DFF outputs unchanged), all lanes.
  void eval();
  /// Rising clock edge: latch every DFF's D into Q, per lane.  Call after
  /// eval(); combinational nets are re-settled automatically.
  void clock();

  // --- statistics -----------------------------------------------------------
  /// Clear toggle statistics (e.g. after reset/warm-up cycles).
  void reset_stats();
  [[nodiscard]] std::uint64_t total_toggles() const;
  /// Switching energy accumulated since reset_stats(), in fJ.
  [[nodiscard]] double dynamic_energy_fj(const CellLibrary& lib) const;
  /// Energy per component group, in fJ.
  [[nodiscard]] std::vector<double> dynamic_energy_by_group_fj(
      const CellLibrary& lib) const;

  // --- fault injection ------------------------------------------------------
  /// Install `plan` on every lane.  Stuck-at levels are forced onto the
  /// affected nets immediately (without charging toggles; call eval() to
  /// propagate).  Transients take effect when their cycle arrives.  The
  /// plan is copied; the caller's object may be destroyed or reused freely
  /// after the call returns.
  void set_fault_plan(const FaultPlan& plan);
  /// Install one plan per lane: lane L gets plans[L], lanes at and beyond
  /// plans.size() run fault-free.  At most kLanes plans.  Replaces any
  /// previously installed plan(s); all plans are copied.
  void set_fault_plans(std::span<const FaultPlan> plans);
  void clear_fault_plan();
  /// Number of clock() edges applied so far (transient cycles count from 0
  /// at construction; see FaultPlan::Transient).  Shared by all lanes.
  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }

 private:
  /// One installed plan and the lanes it applies to.
  struct LanePlan {
    std::uint64_t lanes = 0;  ///< lane mask this plan covers
    FaultPlan plan;
  };

  void eval_gate(const Gate& g);
  /// Value word actually appearing on `net` when `v` is driven onto it.
  /// Branch-free: stuck lanes are overridden by their forced level, live
  /// transient lanes are flipped, untouched lanes pass through.
  [[nodiscard]] std::uint64_t faulted(NetId net, std::uint64_t v) const {
    return ((v & ~stuck_mask_[net]) | stuck_val_[net]) ^ flip_[net];
  }
  void install_plans(std::vector<LanePlan> plans);
  void rebuild_transients();

  const Netlist& nl_;
  int lane_count_ = 1;
  std::uint64_t lane_mask_ = 1;              // toggle-accounting mask
  std::vector<std::uint64_t> value_;         // per net: 64 lanes
  std::vector<std::uint64_t> toggles_;       // per gate, summed over lanes

  bool has_faults_ = false;
  std::uint64_t cycle_ = 0;
  std::vector<LanePlan> plans_;
  std::vector<std::uint64_t> stuck_mask_;    // per net: lanes with a stuck-at
  std::vector<std::uint64_t> stuck_val_;     // per net: forced level per lane
  std::vector<std::uint64_t> flip_;          // per net: lanes with a live transient
  std::vector<std::uint64_t> flip_scratch_;  // per net: next cycle's flip lanes
  std::vector<std::uint8_t> input_net_;      // per net: 1 if a primary input
};

}  // namespace mersit::rtl
