// Standard-cell cost model.
//
// Substitutes for the paper's 45nm library + Synopsys Design Compiler /
// PrimeTime PX flow.  The numbers are representative of a commercial 45nm
// standard-cell library (NAND2-equivalent area ~1.06 um^2): absolute values
// will not match a real synthesis run, but the *ratios* between the three
// MAC designs are driven by gate counts and switching activity, which is
// what the paper's Fig. 7 / Table 3 comparisons measure.
//
// Power model at clock period T:
//   P_dyn  = sum_over_gates(toggles * switch_energy) / (cycles * T)
//   P_leak = sum_over_gates(leakage)
#pragma once

#include "rtl/netlist.h"

namespace mersit::rtl {

struct CellSpec {
  double area_um2 = 0.0;       ///< placed cell area
  double switch_energy_fj = 0.0;  ///< energy per output transition
  double leakage_nw = 0.0;     ///< static leakage power
};

class CellLibrary {
 public:
  /// The default 45nm-like library used throughout the study.
  static const CellLibrary& nangate45_like();

  [[nodiscard]] const CellSpec& spec(CellType t) const { return specs_[static_cast<int>(t)]; }

  /// Total placed area of a netlist in um^2.
  [[nodiscard]] double area_um2(const Netlist& nl) const;

  /// Area grouped by the netlist's component groups.
  [[nodiscard]] std::vector<double> area_by_group_um2(const Netlist& nl) const;

  /// Total leakage in uW.
  [[nodiscard]] double leakage_uw(const Netlist& nl) const;

 private:
  CellSpec specs_[16];
};

/// Combinational logic depth (gates on the longest input->output or
/// register->register path; DFF outputs are path sources, DFF inputs are
/// path sinks).  A unit-delay proxy for the critical path the paper refers
/// to when noting the MERSIT decoder is faster than the Posit one.
[[nodiscard]] int logic_depth(const Netlist& nl);

}  // namespace mersit::rtl
