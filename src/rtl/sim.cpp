#include "rtl/sim.h"

#include <stdexcept>

namespace mersit::rtl {

Simulator::Simulator(const Netlist& nl)
    : nl_(nl), value_(nl.net_count(), 0), toggles_(nl.gates().size(), 0) {
  // Establish consistent initial values (constants, settled logic).
  eval();
  reset_stats();
}

void Simulator::set_input(NetId net, bool value) { value_[net] = value ? 1 : 0; }

void Simulator::set_input_bus(const Bus& bus, std::uint64_t value) {
  for (std::size_t i = 0; i < bus.size(); ++i)
    value_[bus[i]] = static_cast<std::uint8_t>((value >> i) & 1u);
}

void Simulator::eval_gate(const Gate& g) {
  std::uint8_t out = 0;
  switch (g.type) {
    case CellType::kConst0: out = 0; break;
    case CellType::kConst1: out = 1; break;
    case CellType::kInput:
    case CellType::kDff:
      return;  // sources during combinational evaluation
    case CellType::kBuf: out = value_[g.a]; break;
    case CellType::kInv: out = value_[g.a] ^ 1u; break;
    case CellType::kAnd2: out = value_[g.a] & value_[g.b]; break;
    case CellType::kOr2: out = value_[g.a] | value_[g.b]; break;
    case CellType::kNand2: out = (value_[g.a] & value_[g.b]) ^ 1u; break;
    case CellType::kNor2: out = (value_[g.a] | value_[g.b]) ^ 1u; break;
    case CellType::kXor2: out = value_[g.a] ^ value_[g.b]; break;
    case CellType::kXnor2: out = (value_[g.a] ^ value_[g.b]) ^ 1u; break;
    case CellType::kMux2: out = value_[g.s] ? value_[g.b] : value_[g.a]; break;
  }
  if (out != value_[g.out]) {
    value_[g.out] = out;
    toggles_[&g - nl_.gates().data()]++;
  }
}

void Simulator::eval() {
  for (const Gate& g : nl_.gates()) eval_gate(g);
}

void Simulator::clock() {
  const auto& gates = nl_.gates();
  // Sample every D simultaneously, then update the Qs.
  std::vector<std::uint8_t> sampled;
  sampled.reserve(nl_.dff_gate_indices().size());
  for (const std::size_t idx : nl_.dff_gate_indices())
    sampled.push_back(value_[gates[idx].a]);
  std::size_t i = 0;
  for (const std::size_t idx : nl_.dff_gate_indices()) {
    const Gate& g = gates[idx];
    if (value_[g.out] != sampled[i]) {
      value_[g.out] = sampled[i];
      toggles_[idx]++;
    }
    ++i;
  }
  eval();
}

std::uint64_t Simulator::get_bus(const Bus& bus) const {
  if (bus.size() > 64) throw std::invalid_argument("get_bus: bus wider than 64");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.size(); ++i)
    v |= static_cast<std::uint64_t>(value_[bus[i]]) << i;
  return v;
}

std::int64_t Simulator::get_bus_signed(const Bus& bus) const {
  const std::uint64_t raw = get_bus(bus);
  const std::size_t w = bus.size();
  if (w == 0 || w >= 64) return static_cast<std::int64_t>(raw);
  const std::uint64_t sign = 1ull << (w - 1);
  return static_cast<std::int64_t>((raw ^ sign)) - static_cast<std::int64_t>(sign);
}

void Simulator::reset_stats() {
  std::fill(toggles_.begin(), toggles_.end(), 0);
}

std::uint64_t Simulator::total_toggles() const {
  std::uint64_t t = 0;
  for (const auto n : toggles_) t += n;
  return t;
}

double Simulator::dynamic_energy_fj(const CellLibrary& lib) const {
  double e = 0.0;
  const auto& gates = nl_.gates();
  for (std::size_t i = 0; i < gates.size(); ++i)
    e += static_cast<double>(toggles_[i]) * lib.spec(gates[i].type).switch_energy_fj;
  return e;
}

std::vector<double> Simulator::dynamic_energy_by_group_fj(
    const CellLibrary& lib) const {
  std::vector<double> by(nl_.group_names().size(), 0.0);
  const auto& gates = nl_.gates();
  for (std::size_t i = 0; i < gates.size(); ++i)
    by[gates[i].group] +=
        static_cast<double>(toggles_[i]) * lib.spec(gates[i].type).switch_energy_fj;
  return by;
}

}  // namespace mersit::rtl
