#include "rtl/sim.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace mersit::rtl {

namespace {

constexpr std::uint64_t kAllLanes = ~std::uint64_t{0};

[[nodiscard]] constexpr std::uint64_t broadcast(bool value) {
  return value ? kAllLanes : 0;
}

}  // namespace

Simulator::Simulator(const Netlist& nl)
    : nl_(nl), value_(nl.net_count(), 0), toggles_(nl.gates().size(), 0),
      input_net_(nl.net_count(), 0) {
  for (const Gate& g : nl.gates())
    if (g.type == CellType::kInput) input_net_[g.out] = 1;
  // Establish consistent initial values (constants, settled logic).  Every
  // lane starts from this same settled state.
  eval();
  reset_stats();
}

void Simulator::set_lane_count(int lanes) {
  if (lanes < 1 || lanes > kLanes)
    throw std::invalid_argument("Simulator::set_lane_count: lanes out of [1,64]");
  lane_count_ = lanes;
  lane_mask_ = lanes == kLanes ? kAllLanes : (std::uint64_t{1} << lanes) - 1;
}

void Simulator::set_input(NetId net, bool value) {
  std::uint64_t v = broadcast(value);
  if (has_faults_) v = faulted(net, v);
  value_[net] = v;
}

void Simulator::set_input_bus(const Bus& bus, std::uint64_t value) {
  for (std::size_t i = 0; i < bus.size(); ++i)
    set_input(bus[i], ((value >> i) & 1u) != 0);
}

void Simulator::set_input_lanes(NetId net, std::uint64_t lanes) {
  if (has_faults_) lanes = faulted(net, lanes);
  value_[net] = lanes;
}

void Simulator::set_input_bus_lanes(const Bus& bus,
                                    std::span<const std::uint64_t> lane_values) {
  if (lane_values.size() > static_cast<std::size_t>(kLanes))
    throw std::invalid_argument("set_input_bus_lanes: more than 64 lanes");
  for (std::size_t i = 0; i < bus.size(); ++i) {
    std::uint64_t word = 0;
    for (std::size_t l = 0; l < lane_values.size(); ++l)
      word |= ((lane_values[l] >> i) & 1u) << l;
    set_input_lanes(bus[i], word);
  }
}

void Simulator::eval_gate(const Gate& g) {
  std::uint64_t out = 0;
  switch (g.type) {
    case CellType::kConst0: out = 0; break;
    case CellType::kConst1: out = kAllLanes; break;
    case CellType::kInput:
    case CellType::kDff:
      return;  // sources during combinational evaluation
    case CellType::kBuf: out = value_[g.a]; break;
    case CellType::kInv: out = ~value_[g.a]; break;
    case CellType::kAnd2: out = value_[g.a] & value_[g.b]; break;
    case CellType::kOr2: out = value_[g.a] | value_[g.b]; break;
    case CellType::kNand2: out = ~(value_[g.a] & value_[g.b]); break;
    case CellType::kNor2: out = ~(value_[g.a] | value_[g.b]); break;
    case CellType::kXor2: out = value_[g.a] ^ value_[g.b]; break;
    case CellType::kXnor2: out = ~(value_[g.a] ^ value_[g.b]); break;
    case CellType::kMux2: {
      const std::uint64_t s = value_[g.s];
      out = (s & value_[g.b]) | (~s & value_[g.a]);
      break;
    }
  }
  if (has_faults_) out = faulted(g.out, out);
  const std::uint64_t prev = value_[g.out];
  if (prev != out) {
    value_[g.out] = out;
    toggles_[static_cast<std::size_t>(&g - nl_.gates().data())] +=
        static_cast<std::uint64_t>(std::popcount((prev ^ out) & lane_mask_));
  }
}

void Simulator::eval() {
  for (const Gate& g : nl_.gates()) eval_gate(g);
}

void Simulator::clock() {
  const auto& gates = nl_.gates();
  // Sample every D simultaneously, then update the Qs.
  std::vector<std::uint64_t> sampled;
  sampled.reserve(nl_.dff_gate_indices().size());
  for (const std::size_t idx : nl_.dff_gate_indices())
    sampled.push_back(value_[gates[idx].a]);
  ++cycle_;
  if (has_faults_) rebuild_transients();
  std::size_t i = 0;
  for (const std::size_t idx : nl_.dff_gate_indices()) {
    const Gate& g = gates[idx];
    std::uint64_t q = sampled[i];
    if (has_faults_) q = faulted(g.out, q);
    const std::uint64_t prev = value_[g.out];
    if (prev != q) {
      value_[g.out] = q;
      toggles_[idx] +=
          static_cast<std::uint64_t>(std::popcount((prev ^ q) & lane_mask_));
    }
    ++i;
  }
  eval();
}

std::uint64_t Simulator::get_bus(const Bus& bus) const { return get_bus_lane(bus, 0); }

std::int64_t Simulator::get_bus_signed(const Bus& bus) const {
  return get_bus_signed_lane(bus, 0);
}

std::uint64_t Simulator::get_bus_lane(const Bus& bus, int lane) const {
  if (bus.size() > 64) throw std::invalid_argument("get_bus: bus wider than 64");
  if (lane < 0 || lane >= kLanes)
    throw std::invalid_argument("get_bus_lane: lane out of [0,64)");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.size(); ++i)
    v |= ((value_[bus[i]] >> lane) & 1u) << i;
  return v;
}

std::int64_t Simulator::get_bus_signed_lane(const Bus& bus, int lane) const {
  const std::uint64_t raw = get_bus_lane(bus, lane);
  const std::size_t w = bus.size();
  if (w == 0 || w >= 64) return static_cast<std::int64_t>(raw);
  const std::uint64_t sign = 1ull << (w - 1);
  return static_cast<std::int64_t>((raw ^ sign)) - static_cast<std::int64_t>(sign);
}

void Simulator::reset_stats() {
  std::fill(toggles_.begin(), toggles_.end(), 0);
}

std::uint64_t Simulator::total_toggles() const {
  std::uint64_t t = 0;
  for (const auto n : toggles_) t += n;
  return t;
}

double Simulator::dynamic_energy_fj(const CellLibrary& lib) const {
  double e = 0.0;
  const auto& gates = nl_.gates();
  for (std::size_t i = 0; i < gates.size(); ++i)
    e += static_cast<double>(toggles_[i]) * lib.spec(gates[i].type).switch_energy_fj;
  return e;
}

std::vector<double> Simulator::dynamic_energy_by_group_fj(
    const CellLibrary& lib) const {
  std::vector<double> by(nl_.group_names().size(), 0.0);
  const auto& gates = nl_.gates();
  for (std::size_t i = 0; i < gates.size(); ++i)
    by[gates[i].group] +=
        static_cast<double>(toggles_[i]) * lib.spec(gates[i].type).switch_energy_fj;
  return by;
}

// --- fault injection --------------------------------------------------------

void Simulator::set_fault_plan(const FaultPlan& plan) {
  std::vector<LanePlan> plans;
  if (!plan.empty()) plans.push_back({kAllLanes, plan});
  install_plans(std::move(plans));
}

void Simulator::set_fault_plans(std::span<const FaultPlan> lane_plans) {
  if (lane_plans.size() > static_cast<std::size_t>(kLanes))
    throw std::invalid_argument("set_fault_plans: more than 64 lane plans");
  std::vector<LanePlan> plans;
  for (std::size_t l = 0; l < lane_plans.size(); ++l)
    if (!lane_plans[l].empty())
      plans.push_back({std::uint64_t{1} << l, lane_plans[l]});
  install_plans(std::move(plans));
}

void Simulator::clear_fault_plan() { install_plans({}); }

void Simulator::install_plans(std::vector<LanePlan> plans) {
  for (const LanePlan& lp : plans) {
    for (const auto& f : lp.plan.stuck)
      if (f.net >= nl_.net_count())
        throw std::invalid_argument("FaultPlan: stuck-at net out of range");
    for (const auto& f : lp.plan.transients)
      if (f.net >= nl_.net_count())
        throw std::invalid_argument("FaultPlan: transient net out of range");
  }
  // Undo any transient level still held on a primary input by the old plans.
  for (std::size_t n = 0; n < flip_.size(); ++n)
    if (input_net_[n]) value_[n] ^= flip_[n];
  plans_ = std::move(plans);
  has_faults_ = !plans_.empty();
  if (!has_faults_) {
    stuck_mask_.clear();
    stuck_val_.clear();
    flip_.clear();
    return;
  }
  stuck_mask_.assign(nl_.net_count(), 0);
  stuck_val_.assign(nl_.net_count(), 0);
  flip_.assign(nl_.net_count(), 0);
  for (const LanePlan& lp : plans_) {
    for (const auto& f : lp.plan.stuck) {
      const std::uint64_t level = f.value ? lp.lanes : 0;
      stuck_mask_[f.net] |= lp.lanes;
      // Within one plan the last stuck-at on a net wins (scalar semantics).
      stuck_val_[f.net] = (stuck_val_[f.net] & ~lp.lanes) | level;
      // Force current state on the affected lanes; eval() propagates.
      value_[f.net] = (value_[f.net] & ~lp.lanes) | level;
    }
  }
  rebuild_transients();
}

void Simulator::rebuild_transients() {
  flip_scratch_.assign(flip_.size(), 0);
  for (const LanePlan& lp : plans_)
    for (const auto& t : lp.plan.transients)
      if (t.cycle == cycle_) flip_scratch_[t.net] ^= lp.lanes;
  // Gate and DFF outputs pick flips up when next driven (eval / clock), but
  // primary inputs hold their level, so apply the flip delta to them here.
  for (std::size_t n = 0; n < flip_.size(); ++n)
    if (input_net_[n]) value_[n] ^= flip_scratch_[n] ^ flip_[n];
  flip_.swap(flip_scratch_);
}

}  // namespace mersit::rtl
