#include "rtl/sim.h"

#include <algorithm>
#include <stdexcept>

namespace mersit::rtl {

Simulator::Simulator(const Netlist& nl)
    : nl_(nl), value_(nl.net_count(), 0), toggles_(nl.gates().size(), 0),
      input_net_(nl.net_count(), 0) {
  for (const Gate& g : nl.gates())
    if (g.type == CellType::kInput) input_net_[g.out] = 1;
  // Establish consistent initial values (constants, settled logic).
  eval();
  reset_stats();
}

void Simulator::set_input(NetId net, bool value) {
  std::uint8_t v = value ? 1 : 0;
  if (has_faults_) v = faulted(net, v);
  value_[net] = v;
}

void Simulator::set_input_bus(const Bus& bus, std::uint64_t value) {
  for (std::size_t i = 0; i < bus.size(); ++i)
    set_input(bus[i], ((value >> i) & 1u) != 0);
}

void Simulator::eval_gate(const Gate& g) {
  std::uint8_t out = 0;
  switch (g.type) {
    case CellType::kConst0: out = 0; break;
    case CellType::kConst1: out = 1; break;
    case CellType::kInput:
    case CellType::kDff:
      return;  // sources during combinational evaluation
    case CellType::kBuf: out = value_[g.a]; break;
    case CellType::kInv: out = value_[g.a] ^ 1u; break;
    case CellType::kAnd2: out = value_[g.a] & value_[g.b]; break;
    case CellType::kOr2: out = value_[g.a] | value_[g.b]; break;
    case CellType::kNand2: out = (value_[g.a] & value_[g.b]) ^ 1u; break;
    case CellType::kNor2: out = (value_[g.a] | value_[g.b]) ^ 1u; break;
    case CellType::kXor2: out = value_[g.a] ^ value_[g.b]; break;
    case CellType::kXnor2: out = (value_[g.a] ^ value_[g.b]) ^ 1u; break;
    case CellType::kMux2: out = value_[g.s] ? value_[g.b] : value_[g.a]; break;
  }
  if (has_faults_) out = faulted(g.out, out);
  if (out != value_[g.out]) {
    value_[g.out] = out;
    toggles_[&g - nl_.gates().data()]++;
  }
}

void Simulator::eval() {
  for (const Gate& g : nl_.gates()) eval_gate(g);
}

void Simulator::clock() {
  const auto& gates = nl_.gates();
  // Sample every D simultaneously, then update the Qs.
  std::vector<std::uint8_t> sampled;
  sampled.reserve(nl_.dff_gate_indices().size());
  for (const std::size_t idx : nl_.dff_gate_indices())
    sampled.push_back(value_[gates[idx].a]);
  ++cycle_;
  if (has_faults_) rebuild_transients();
  std::size_t i = 0;
  for (const std::size_t idx : nl_.dff_gate_indices()) {
    const Gate& g = gates[idx];
    std::uint8_t q = sampled[i];
    if (has_faults_) q = faulted(g.out, q);
    if (value_[g.out] != q) {
      value_[g.out] = q;
      toggles_[idx]++;
    }
    ++i;
  }
  eval();
}

std::uint64_t Simulator::get_bus(const Bus& bus) const {
  if (bus.size() > 64) throw std::invalid_argument("get_bus: bus wider than 64");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.size(); ++i)
    v |= static_cast<std::uint64_t>(value_[bus[i]]) << i;
  return v;
}

std::int64_t Simulator::get_bus_signed(const Bus& bus) const {
  const std::uint64_t raw = get_bus(bus);
  const std::size_t w = bus.size();
  if (w == 0 || w >= 64) return static_cast<std::int64_t>(raw);
  const std::uint64_t sign = 1ull << (w - 1);
  return static_cast<std::int64_t>((raw ^ sign)) - static_cast<std::int64_t>(sign);
}

void Simulator::reset_stats() {
  std::fill(toggles_.begin(), toggles_.end(), 0);
}

std::uint64_t Simulator::total_toggles() const {
  std::uint64_t t = 0;
  for (const auto n : toggles_) t += n;
  return t;
}

double Simulator::dynamic_energy_fj(const CellLibrary& lib) const {
  double e = 0.0;
  const auto& gates = nl_.gates();
  for (std::size_t i = 0; i < gates.size(); ++i)
    e += static_cast<double>(toggles_[i]) * lib.spec(gates[i].type).switch_energy_fj;
  return e;
}

std::vector<double> Simulator::dynamic_energy_by_group_fj(
    const CellLibrary& lib) const {
  std::vector<double> by(nl_.group_names().size(), 0.0);
  const auto& gates = nl_.gates();
  for (std::size_t i = 0; i < gates.size(); ++i)
    by[gates[i].group] +=
        static_cast<double>(toggles_[i]) * lib.spec(gates[i].type).switch_energy_fj;
  return by;
}

// --- fault injection --------------------------------------------------------

void Simulator::set_fault_plan(const FaultPlan& plan) {
  for (const auto& f : plan.stuck)
    if (f.net >= nl_.net_count())
      throw std::invalid_argument("FaultPlan: stuck-at net out of range");
  for (const auto& f : plan.transients)
    if (f.net >= nl_.net_count())
      throw std::invalid_argument("FaultPlan: transient net out of range");
  // Undo any transient level still held on a primary input by the old plan.
  for (std::size_t n = 0; n < flip_.size(); ++n)
    if (flip_[n] && input_net_[n]) value_[n] ^= 1u;
  plan_ = plan;
  has_faults_ = !plan_.empty();
  if (!has_faults_) {
    stuck_.clear();
    flip_.clear();
    return;
  }
  stuck_.assign(nl_.net_count(), kFree);
  flip_.assign(nl_.net_count(), 0);
  for (const auto& f : plan_.stuck) {
    stuck_[f.net] = f.value ? 1 : 0;
    value_[f.net] = f.value ? 1 : 0;  // force current state; eval() propagates
  }
  rebuild_transients();
}

void Simulator::clear_fault_plan() { set_fault_plan(FaultPlan{}); }

void Simulator::rebuild_transients() {
  flip_scratch_.assign(flip_.size(), 0);
  for (const auto& t : plan_.transients)
    if (t.cycle == cycle_) flip_scratch_[t.net] ^= 1u;
  // Gate and DFF outputs pick flips up when next driven (eval / clock), but
  // primary inputs hold their level, so apply the flip delta to them here.
  for (std::size_t n = 0; n < flip_.size(); ++n)
    if (flip_scratch_[n] != flip_[n] && input_net_[n]) value_[n] ^= 1u;
  flip_.swap(flip_scratch_);
}

}  // namespace mersit::rtl
