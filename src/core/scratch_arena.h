// Thread-local bump-pointer scratch arena for the inference hot paths.
//
// The GEMM engine and the conv lowering need short-lived float buffers
// (im2col columns, packed A/B panels) on every call; allocating them from
// the heap each time costs more than the math for small layers.  The arena
// hands out bump allocations from thread-owned blocks that persist across
// calls, so steady-state inference performs zero heap allocations for
// scratch.
//
// Usage is strictly scoped:
//
//   auto& arena = core::ScratchArena::local();
//   const core::ScratchArena::Scope scope(arena);
//   float* col = arena.alloc(n);   // valid until `scope` is destroyed
//
// Properties the callers rely on:
//  * LIFO scopes — Scope saves the bump position and restores it on
//    destruction, so allocations nest like stack frames.  Nested
//    core::ThreadPool regions run inline on the calling thread, which makes
//    their scopes nest correctly too.
//  * Stable pointers — the arena grows by appending new blocks, never by
//    moving existing ones, so earlier allocations in the same scope stay
//    valid when a later allocation forces growth.
//  * Thread isolation — local() returns a distinct arena per thread; no
//    locks, no sharing, TSan-clean by construction.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

#include "core/aligned.h"

namespace mersit::core {

class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// RAII allocation frame: restores the arena's bump position on
  /// destruction, releasing (for reuse, not to the heap) everything
  /// allocated inside it.
  class Scope {
   public:
    explicit Scope(ScratchArena& a)
        : arena_(a), block_(a.block_), offset_(a.offset_) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      arena_.block_ = block_;
      arena_.offset_ = offset_;
    }

   private:
    ScratchArena& arena_;
    std::size_t block_;
    std::size_t offset_;
  };

  /// Bump-allocate `n` floats, 64-byte aligned: blocks come from aligned
  /// operator new and every allocation size is rounded up to a whole number
  /// of cache lines, so the SIMD GEMM backends can use aligned loads/stores
  /// on pack buffers.  The memory is uninitialized and valid until the
  /// innermost enclosing Scope ends.  alloc(0) returns nullptr.
  [[nodiscard]] float* alloc(std::size_t n) {
    if (n == 0) return nullptr;
    const std::size_t need = align_up(n);
    if (block_ < blocks_.size() && offset_ + need <= blocks_[block_].size) {
      float* p = blocks_[block_].data.get() + offset_;
      offset_ += need;
      MERSIT_ASSERT_ALIGNED(p);
      return p;
    }
    float* p = alloc_slow(need);
    MERSIT_ASSERT_ALIGNED(p);
    return p;
  }

  /// Bytes currently held across all blocks (monitoring / tests).
  [[nodiscard]] std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size * sizeof(float);
    return total;
  }

  /// This thread's arena.  Workers of core::ThreadPool each get their own;
  /// nested inline parallel regions share the caller's, with Scope nesting
  /// keeping their allocations disjoint.
  [[nodiscard]] static ScratchArena& local() {
    thread_local ScratchArena arena;
    return arena;
  }

 private:
  /// Frees a block allocated with the aligned array new below.
  struct AlignedFree {
    void operator()(float* p) const {
      ::operator delete[](p, std::align_val_t{kSimdAlign});
    }
  };

  struct Block {
    std::unique_ptr<float[], AlignedFree> data;
    std::size_t size = 0;  // floats
  };

  static constexpr std::size_t kAlignFloats = kSimdAlign / sizeof(float);
  static constexpr std::size_t kMinBlockFloats = std::size_t{1} << 14;  // 64 KiB

  [[nodiscard]] static std::size_t align_up(std::size_t n) {
    return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
  }

  float* alloc_slow(std::size_t need) {
    // Advance to the next block; anything at or past the bump position holds
    // no live allocation (strict LIFO), so an undersized block there may be
    // replaced without invalidating outstanding pointers.
    std::size_t next = block_ < blocks_.size() ? block_ + 1 : blocks_.size();
    if (offset_ == 0 && block_ < blocks_.size()) next = block_;  // unused block
    if (next < blocks_.size() && blocks_[next].size < need) blocks_[next] = {};
    if (next >= blocks_.size() || blocks_[next].size == 0) {
      std::size_t sz = kMinBlockFloats;
      if (!blocks_.empty()) sz = blocks_.back().size * 2;
      sz = std::max(sz, need);
      Block b{std::unique_ptr<float[], AlignedFree>(new (std::align_val_t{
                  kSimdAlign}) float[sz]),
              sz};
      if (next >= blocks_.size())
        blocks_.push_back(std::move(b));
      else
        blocks_[next] = std::move(b);
    }
    block_ = next;
    offset_ = need;
    return blocks_[block_].data.get();
  }

  std::vector<Block> blocks_;
  std::size_t block_ = 0;   // current block index (may equal blocks_.size())
  std::size_t offset_ = 0;  // bump position within the current block
};

}  // namespace mersit::core
