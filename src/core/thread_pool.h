// Minimal blocking fork-join thread pool for the PTQ / benchmark hot loops.
//
// Design constraints, in order:
//  * deterministic work assignment — parallel_chunks always splits [0, n)
//    into the same contiguous ranges for a given pool size, so parallel
//    reductions that combine per-chunk partials in chunk order reproduce
//    bit-identical results run to run;
//  * safe nesting — a parallel_for issued from inside a worker (or from
//    inside another parallel_for on the calling thread) runs inline in the
//    caller, so coarse-grained outer loops (e.g. the Table-2 model rows)
//    compose with the fine-grained inner loops (per-channel weight
//    quantization) without oversubscription or deadlock;
//  * header-only with no project dependencies, so any layer (nn, ptq,
//    bench) can use it without a link edge onto mersit_core.
//
// Sizing: MERSIT_THREADS in the environment pins the global pool width;
// unset (or empty) falls back to std::thread::hardware_concurrency(), but a
// malformed value — garbage, 0, negative, out of range — throws
// std::runtime_error instead of silently falling back (see core/env.h).
// A width of 1 spawns no threads at all — every parallel_* call runs
// inline, which keeps single-core containers and TSan traces simple.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/env.h"

namespace mersit::core {

class ThreadPool {
 public:
  /// MERSIT_THREADS if set to an integer in [1, 1024], else hardware
  /// concurrency.  A set-but-malformed value throws std::runtime_error.
  [[nodiscard]] static int default_thread_count() {
    const long v = env_int("MERSIT_THREADS", /*fallback=*/0, 1, 1024);
    if (v > 0) return static_cast<int>(v);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }

  explicit ThreadPool(int threads = default_thread_count()) {
    const int extra = std::max(1, threads) - 1;  // the caller is worker #0
    workers_.reserve(static_cast<std::size_t>(extra));
    for (int i = 0; i < extra; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  /// Total workers including the calling thread.
  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Split [0, n) into at most size() contiguous chunks and run
  /// fn(begin, end) on each; blocks until every chunk finished.  The first
  /// exception thrown by any chunk is rethrown on the caller.  Nested calls
  /// (from a worker or from inside another parallel region on this thread)
  /// execute fn(0, n) inline.
  void parallel_chunks(std::size_t n,
                       const std::function<void(std::size_t, std::size_t)>& fn) {
    if (n == 0) return;
    if (in_parallel_region() || workers_.empty() || n == 1) {
      const RegionGuard guard;
      fn(0, n);
      return;
    }
    const std::size_t parts = std::min(n, static_cast<std::size_t>(size()));
    Batch batch;
    batch.fn = &fn;
    batch.remaining = static_cast<int>(parts) - 1;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      for (std::size_t i = 1; i < parts; ++i)
        queue_.push_back({&batch, i * n / parts, (i + 1) * n / parts});
    }
    cv_.notify_all();
    {
      const RegionGuard guard;
      try {
        fn(0, n / parts);
      } catch (...) {
        batch.capture(std::current_exception());
      }
    }
    std::unique_lock<std::mutex> lock(batch.mu);
    batch.done.wait(lock, [&batch] { return batch.remaining == 0; });
    if (batch.error) std::rethrow_exception(batch.error);
  }

  /// parallel_chunks with a per-index body.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    parallel_chunks(n, [&fn](std::size_t begin, std::size_t end) {
      for (; begin < end; ++begin) fn(begin);
    });
  }

 private:
  struct Batch {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::mutex mu;
    std::condition_variable done;
    int remaining = 0;
    std::exception_ptr error;

    void capture(std::exception_ptr e) {
      const std::lock_guard<std::mutex> lock(mu);
      if (!error) error = std::move(e);
    }
  };

  struct Task {
    Batch* batch = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  /// Thread-local nesting flag (per thread, shared by every pool — nesting
  /// across two distinct pools still runs inline, which is the safe choice).
  [[nodiscard]] static bool& in_parallel_region() {
    thread_local bool in_region = false;
    return in_region;
  }

  /// Restores (not clears) the previous value, so a second nested call
  /// issued after an inner region ended still sees itself as nested.
  struct RegionGuard {
    bool prev = in_parallel_region();
    RegionGuard() { in_parallel_region() = true; }
    ~RegionGuard() { in_parallel_region() = prev; }
  };

  void worker_loop() {
    for (;;) {
      Task task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        task = queue_.front();
        queue_.pop_front();
      }
      {
        const RegionGuard guard;
        try {
          (*task.batch->fn)(task.begin, task.end);
        } catch (...) {
          task.batch->capture(std::current_exception());
        }
      }
      {
        // Notify while still holding the batch mutex: once the lock drops,
        // the caller in parallel_chunks may observe remaining == 0 and
        // destroy Batch, so no member may be touched after the unlock.
        const std::lock_guard<std::mutex> lock(task.batch->mu);
        --task.batch->remaining;
        task.batch->done.notify_one();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stop_ = false;
};

namespace detail {
inline std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool = std::make_unique<ThreadPool>();
  return pool;
}
}  // namespace detail

/// Process-wide pool sized by MERSIT_THREADS (see default_thread_count()).
inline ThreadPool& global_pool() { return *detail::global_pool_slot(); }

/// Replace the global pool with one of `threads` workers (the benches sweep
/// thread widths within one process).  MUST be called from quiescence — no
/// parallel region may be in flight; the old pool is joined and destroyed
/// before the new one exists, so callers holding a ThreadPool& across the
/// call would dangle.
inline void resize_global_pool(int threads) {
  std::unique_ptr<ThreadPool>& slot = detail::global_pool_slot();
  slot.reset();  // join the old workers first
  slot = std::make_unique<ThreadPool>(threads);
}

}  // namespace mersit::core
