// MERSIT(N,es) for word sizes beyond the paper's 8 bits (extension).
//
// The paper fixes N=8 ("this work is focused on 8-bit representations");
// the format definition itself generalizes verbatim to any N with
// (N-2) % es == 0.  WideMersit implements the same decode rule and the same
// round-to-nearest-even-code encode on up-to-16-bit words, enabling e.g.
// MERSIT(16,2) studies of accumulation/weight-master-copy precision.
//
// WideMersit(8,es) is bit-for-bit identical to core::MersitFormat(8,es)
// (enforced by tests).
#pragma once

#include <cstdint>
#include <vector>

namespace mersit::core {

class WideMersit {
 public:
  struct Fields {
    bool sign = false;
    bool ks = false;
    bool is_zero = false;
    bool is_nar = false;
    int g = 0;
    int k = 0;
    int exp = 0;
    std::uint32_t frac = 0;
    int frac_bits = 0;
  };

  /// `nbits` in [4, 16]; `es` >= 1 and (nbits-2) % es == 0.
  WideMersit(int nbits, int es);

  [[nodiscard]] int nbits() const { return nbits_; }
  [[nodiscard]] int es() const { return es_; }
  [[nodiscard]] int groups() const { return groups_; }
  [[nodiscard]] int regime_weight() const { return (1 << es_) - 1; }
  [[nodiscard]] int min_eff_exponent() const { return -regime_weight() * groups_; }
  [[nodiscard]] int max_eff_exponent() const {
    return regime_weight() * (groups_ - 1) + (1 << es_) - 2;
  }
  [[nodiscard]] int max_frac_bits() const { return (groups_ - 1) * es_; }

  [[nodiscard]] Fields fields(std::uint16_t code) const;
  [[nodiscard]] std::uint16_t pack(const Fields& f) const;
  [[nodiscard]] double decode_value(std::uint16_t code) const;

  /// Round-to-nearest encode, saturating (no underflow / no overflow,
  /// Posit semantics); ties resolved to the even lower-neighbour code,
  /// matching MersitFormat::encode_direct.
  [[nodiscard]] std::uint16_t encode(double x) const;

  [[nodiscard]] std::uint16_t zero_code() const;
  [[nodiscard]] std::uint16_t nar_code() const;
  [[nodiscard]] std::uint16_t max_code() const;
  [[nodiscard]] std::uint16_t min_pos_code() const;

  /// Mask of valid code bits (codes above this are rejected).
  [[nodiscard]] std::uint32_t code_mask() const {
    return (1u << nbits_) - 1u;
  }

 private:
  [[nodiscard]] std::uint32_t ec(std::uint16_t code, int i) const;

  int nbits_, es_, groups_;
};

}  // namespace mersit::core
