#include "core/mersit_wide.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mersit::core {

namespace {

int floor_div(int a, int b) {
  int q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

}  // namespace

WideMersit::WideMersit(int nbits, int es)
    : nbits_(nbits), es_(es), groups_(es >= 1 ? (nbits - 2) / es : 0) {
  if (nbits < 4 || nbits > 16)
    throw std::invalid_argument("WideMersit: nbits must be in [4, 16]");
  if (es < 1 || (nbits - 2) % es != 0)
    throw std::invalid_argument("WideMersit: es must divide nbits-2");
}

std::uint32_t WideMersit::ec(std::uint16_t code, int i) const {
  const int shift = (groups_ - 1 - i) * es_;
  return (static_cast<std::uint32_t>(code) >> shift) & ((1u << es_) - 1u);
}

WideMersit::Fields WideMersit::fields(std::uint16_t code) const {
  Fields f;
  f.sign = ((code >> (nbits_ - 1)) & 1u) != 0;
  f.ks = ((code >> (nbits_ - 2)) & 1u) != 0;
  const std::uint32_t ones = (1u << es_) - 1u;
  int g = -1;
  for (int i = 0; i < groups_; ++i) {
    if (ec(code, i) != ones) {
      g = i;
      break;
    }
  }
  if (g < 0) {
    f.is_zero = !f.ks;
    f.is_nar = f.ks;
    return f;
  }
  f.g = g;
  f.k = f.ks ? g : -(g + 1);
  f.exp = static_cast<int>(ec(code, g));
  f.frac_bits = (groups_ - 1 - g) * es_;
  f.frac = static_cast<std::uint32_t>(code) & ((1u << f.frac_bits) - 1u);
  return f;
}

std::uint16_t WideMersit::pack(const Fields& f) const {
  const std::uint32_t sign_bit = f.sign ? (1u << (nbits_ - 1)) : 0u;
  const std::uint32_t ks_bit = 1u << (nbits_ - 2);
  const std::uint32_t ones = (1u << es_) - 1u;
  const std::uint32_t body_ones = (1u << (nbits_ - 2)) - 1u;
  if (f.is_zero) return static_cast<std::uint16_t>(body_ones);
  if (f.is_nar) return static_cast<std::uint16_t>(sign_bit | ks_bit | body_ones);
  assert(f.g >= 0 && f.g < groups_);
  assert(f.exp >= 0 && static_cast<std::uint32_t>(f.exp) < ones);
  std::uint32_t body = f.ks ? ks_bit : 0u;
  for (int i = 0; i < f.g; ++i) body |= ones << ((groups_ - 1 - i) * es_);
  body |= static_cast<std::uint32_t>(f.exp) << ((groups_ - 1 - f.g) * es_);
  const int fb = (groups_ - 1 - f.g) * es_;
  body |= f.frac & ((fb > 0 ? (1u << fb) : 1u) - 1u);
  return static_cast<std::uint16_t>(sign_bit | body);
}

double WideMersit::decode_value(std::uint16_t code) const {
  const Fields f = fields(code);
  if (f.is_zero) return 0.0;
  if (f.is_nar)
    return f.sign ? -std::numeric_limits<double>::infinity()
                  : std::numeric_limits<double>::infinity();
  const int eff = regime_weight() * f.k + f.exp;
  const double sig =
      1.0 + static_cast<double>(f.frac) / std::ldexp(1.0, f.frac_bits);
  const double mag = std::ldexp(sig, eff);
  return f.sign ? -mag : mag;
}

std::uint16_t WideMersit::zero_code() const {
  return static_cast<std::uint16_t>((1u << (nbits_ - 2)) - 1u);
}
std::uint16_t WideMersit::nar_code() const {
  return static_cast<std::uint16_t>((1u << (nbits_ - 1)) - 1u);
}
std::uint16_t WideMersit::max_code() const {
  Fields f;
  f.ks = true;
  f.g = groups_ - 1;
  f.exp = (1 << es_) - 2;
  return pack(f);
}
std::uint16_t WideMersit::min_pos_code() const {
  Fields f;
  f.ks = false;
  f.g = groups_ - 1;
  f.exp = 0;
  return pack(f);
}

std::uint16_t WideMersit::encode(double x) const {
  if (std::isnan(x) || x == 0.0) return zero_code();
  const bool sign = x < 0.0;
  const std::uint32_t sign_bit = sign ? (1u << (nbits_ - 1)) : 0u;
  const double a = std::fabs(x);
  const int w = regime_weight();

  const double max_val = std::ldexp(1.0, max_eff_exponent());
  const double min_val = std::ldexp(1.0, min_eff_exponent());
  if (a >= max_val) return static_cast<std::uint16_t>(max_code() | sign_bit);
  if (a <= min_val) return static_cast<std::uint16_t>(min_pos_code() | sign_bit);

  int e = 0;
  (void)std::frexp(a, &e);
  e -= 1;

  const auto binade_fields = [&](int eff) {
    Fields f;
    f.sign = false;  // sign applied at the end
    f.k = floor_div(eff, w);
    f.exp = eff - f.k * w;
    f.ks = f.k >= 0;
    f.g = f.ks ? f.k : -f.k - 1;
    f.frac_bits = (groups_ - 1 - f.g) * es_;
    return f;
  };

  Fields f = binade_fields(e);
  const double scaled = std::ldexp(a, f.frac_bits - e);
  const double fl = std::floor(scaled);
  const double rem = scaled - fl;
  auto lattice = static_cast<std::uint32_t>(fl);

  const auto make_code = [&](int eff, std::uint32_t significand) -> std::uint16_t {
    Fields bf = binade_fields(eff);
    bf.frac = significand & ((bf.frac_bits > 0 ? (1u << bf.frac_bits) : 1u) - 1u);
    if (bf.frac_bits == 0) bf.frac = 0;
    return pack(bf);
  };
  const auto round_up_code = [&]() -> std::uint16_t {
    if (lattice + 1u == (2u << f.frac_bits)) {
      if (e + 1 > max_eff_exponent()) return max_code();
      return make_code(e + 1, 1u << binade_fields(e + 1).frac_bits);
    }
    return make_code(e, lattice + 1u);
  };

  std::uint16_t body;
  if (rem < 0.5) {
    body = make_code(e, lattice);
  } else if (rem > 0.5) {
    body = round_up_code();
  } else {
    const std::uint16_t lo = make_code(e, lattice);
    body = ((lo & 1u) == 0) ? lo : round_up_code();
  }
  return static_cast<std::uint16_t>(body | sign_bit);
}

}  // namespace mersit::core
