// MERSIT(N,es): the paper's 8-bit Posit-like format with merged exponent and
// regime (Section 3, Fig. 3, Table 1).
//
// Word layout (MSB..LSB):
//   sign | ks | EC[0] | EC[1] | ... | EC[G-1]
// where each exponent candidate EC[i] is an es-bit group and G = (N-2)/es.
//
// Decoding rule:
//   * g  = index of the first EC (from the MSB side) that is NOT all-ones,
//          i.e. the first EC "incorporating a leading zero" — in hardware each
//          EC is AND-gated and a small LZD finds the first zero output.
//   * exp = value of EC[g] (necessarily <= 2^es - 2).
//   * k   = g        if ks == 1   (non-negative regime)
//           -(g+1)   if ks == 0   (negative regime)
//   * fraction = all bits below EC[g];  frac_bits = (G-1-g) * es.
//   * value = (-1)^sign * 2^((2^es - 1)*k + exp) * (1 + .frac)      (Eq. 1)
//
// Special patterns (all ECs all-ones, so no exponent is found):
//   * ks == 0  =>  zero   (body 0111111 for N=8; Table 1)
//   * ks == 1  =>  +/-inf ("NaR"; body 1111111)
//
// Like Posit, MERSIT neither underflows to zero nor overflows to inf when
// rounding: magnitudes saturate at minpos / maxpos.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "formats/format.h"

namespace mersit::core {

class MersitFormat final : public formats::ExponentCodedFormat {
 public:
  /// Decoded structural fields of one MERSIT word.
  struct Fields {
    bool sign = false;
    bool ks = false;       ///< regime sign indicator
    bool is_zero = false;
    bool is_nar = false;   ///< +/-inf ("not a real")
    int g = 0;             ///< index of the exponent EC
    int k = 0;             ///< regime value (Eq. 2)
    int exp = 0;           ///< exponent value (0 .. 2^es-2)
    std::uint32_t frac = 0;
    int frac_bits = 0;
    /// Effective exponent (2^es - 1) * k + exp.
    [[nodiscard]] int effective_exponent(int es) const {
      return ((1 << es) - 1) * k + exp;
    }
  };

  /// One row of the Table-1 style decode listing.
  struct TableRow {
    std::string body;      ///< 7-bit body pattern with fraction bits as 'x'
    bool special = false;  ///< zero / inf row
    int k = 0;
    int exp = 0;
    int eff_exp = 0;
    int frac_bits = 0;
    std::string label;     ///< "zero" / "+/-inf" for special rows
  };

  /// `nbits` must be 8 (code words are bytes); `es` >= 1 with (nbits-2) % es == 0.
  MersitFormat(int nbits, int es);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] formats::Decoded decode(std::uint8_t code) const override;
  [[nodiscard]] bool underflows_to_zero() const override { return false; }

  /// Structural decode (regime sign, group index, merged fields).
  [[nodiscard]] Fields fields(std::uint8_t code) const;

  /// Inverse of fields(); `f.exp` must be <= 2^es-2 and `f.g` < groups().
  [[nodiscard]] std::uint8_t pack(const Fields& f) const;

  /// Direct algorithmic round-to-nearest encode (saturating, no-underflow
  /// Posit semantics, ties resolved exactly as Format::encode's table codec).
  [[nodiscard]] std::uint8_t encode_direct(double x) const;

  [[nodiscard]] int es() const { return es_; }
  [[nodiscard]] int groups() const { return groups_; }
  /// Regime weight (2^es - 1), the multiplier in Eq. 1.
  [[nodiscard]] int regime_weight() const { return (1 << es_) - 1; }
  /// Fraction width of words whose exponent sits in EC[g].
  [[nodiscard]] int frac_bits_for_group(int g) const { return (groups_ - 1 - g) * es_; }
  /// Smallest effective exponent: -(2^es - 1) * G.
  [[nodiscard]] int min_eff_exponent() const { return -regime_weight() * groups_; }
  /// Largest effective exponent: (2^es - 1)*(G-1) + 2^es - 2.
  [[nodiscard]] int max_eff_exponent() const {
    return regime_weight() * (groups_ - 1) + (1 << es_) - 2;
  }

  [[nodiscard]] std::uint8_t zero_code() const;      ///< +0 pattern
  [[nodiscard]] std::uint8_t nar_code() const;       ///< +inf pattern
  [[nodiscard]] std::uint8_t max_code() const;       ///< largest finite
  [[nodiscard]] std::uint8_t min_pos_code() const;   ///< smallest positive

  /// Regenerates the paper's Table 1 (all body patterns, ascending eff. exp).
  [[nodiscard]] std::vector<TableRow> decode_table() const;

 private:
  [[nodiscard]] std::uint32_t ec(std::uint8_t code, int i) const;

  int nbits_;
  int es_;
  int groups_;
};

/// Convenience singletons for the two configurations studied in the paper.
const MersitFormat& mersit_8_2();
const MersitFormat& mersit_8_3();

}  // namespace mersit::core
