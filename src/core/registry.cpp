#include "core/registry.h"

#include <stdexcept>

#include "core/mersit.h"
#include "formats/fp8.h"
#include "formats/int8.h"
#include "formats/posit.h"

namespace mersit::core {

using formats::Format;

std::shared_ptr<const Format> make_format(const std::string& name) {
  if (name == "INT8") return std::make_shared<formats::Int8Format>();
  for (int e = 2; e <= 6; ++e)
    if (name == "FP(8," + std::to_string(e) + ")")
      return std::make_shared<formats::Fp8Format>(e);
  for (int es = 0; es <= 4; ++es) {
    if (name == "Posit(8," + std::to_string(es) + ")")
      return std::make_shared<formats::PaperPosit8>(es);
    if (name == "StdPosit(8," + std::to_string(es) + ")")
      return std::make_shared<formats::StandardPosit8>(es);
  }
  for (int es : {2, 3, 6})
    if (name == "MERSIT(8," + std::to_string(es) + ")")
      return std::make_shared<MersitFormat>(8, es);
  throw std::invalid_argument("make_format: unknown format '" + name + "'");
}

namespace {

std::vector<std::shared_ptr<const Format>> make_all(
    const std::vector<std::string>& names) {
  std::vector<std::shared_ptr<const Format>> out;
  out.reserve(names.size());
  for (const auto& n : names) out.push_back(make_format(n));
  return out;
}

}  // namespace

std::vector<std::shared_ptr<const Format>> table2_formats() {
  return make_all({"INT8", "FP(8,2)", "FP(8,3)", "FP(8,4)", "FP(8,5)",
                   "Posit(8,0)", "Posit(8,1)", "Posit(8,2)", "Posit(8,3)",
                   "MERSIT(8,2)", "MERSIT(8,3)"});
}

std::vector<std::shared_ptr<const Format>> fig4_formats() {
  return make_all({"FP(8,2)", "FP(8,3)", "FP(8,4)", "FP(8,5)", "Posit(8,0)",
                   "Posit(8,1)", "Posit(8,2)", "MERSIT(8,2)", "MERSIT(8,3)"});
}

std::vector<std::shared_ptr<const Format>> headline_formats() {
  return make_all({"FP(8,4)", "Posit(8,1)", "MERSIT(8,2)"});
}

std::vector<std::string> all_format_names() {
  std::vector<std::string> names{"INT8"};
  for (int e = 2; e <= 6; ++e) names.push_back("FP(8," + std::to_string(e) + ")");
  for (int es = 0; es <= 4; ++es) {
    names.push_back("Posit(8," + std::to_string(es) + ")");
    names.push_back("StdPosit(8," + std::to_string(es) + ")");
  }
  for (int es : {2, 3, 6}) names.push_back("MERSIT(8," + std::to_string(es) + ")");
  return names;
}

}  // namespace mersit::core
