// Bounded MPMC queue for the serving request path.
//
// Design constraints, in order:
//  * admission control never blocks — producers use try_push, which fails
//    immediately when the queue is full or closed, so overload sheds load
//    with a typed rejection instead of wedging callers behind a mutex-
//    convoyed blocking push;
//  * consumers block cheaply — pop_wait parks on a condition variable with
//    a timeout, so replica workers spend idle time asleep but still wake
//    periodically to refresh their watchdog heartbeat;
//  * the watchdog can surgically extract items — remove_if pulls matching
//    entries out of the middle of the queue under the lock, which is how
//    expired requests are failed even when every worker is wedged;
//  * close() makes shutdown deterministic — producers fail, consumers
//    drain what is left and then see "closed" instead of sleeping forever.
//
// Implementation is a mutex + two condition variables over a std::deque.
// "Lock-light" here means short critical sections (pointer moves only),
// not lock-free: the serving hot path moves one Tensor per request, and a
// contended ticket-lock section of a few dozen ns is invisible next to a
// multi-millisecond model forward.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/clock.h"

namespace mersit::core {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking enqueue: false when full or closed (the caller sheds).
  [[nodiscard]] bool try_push(T&& item) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking dequeue with a timeout.  Returns the front item, or nullopt
  /// when `timeout` elapsed or the queue is closed and drained.  A closed
  /// queue still yields its remaining items — shutdown never drops work
  /// silently; the engine decides what to do with the remainder.
  [[nodiscard]] std::optional<T> pop_wait(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, timeout,
                        [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking dequeue (micro-batch gathering).
  [[nodiscard]] std::optional<T> try_pop() {
    const std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Extract every item matching `pred`, preserving the relative order of
  /// the survivors.  Returns the extracted items — the watchdog's expiry
  /// sweep, which must fail deadline-blown requests even when no consumer
  /// is making progress.
  template <typename Pred>
  [[nodiscard]] std::vector<T> remove_if(Pred pred) {
    std::vector<T> removed;
    const std::lock_guard<std::mutex> lock(mu_);
    std::deque<T> kept;
    for (T& item : items_) {
      if (pred(item))
        removed.push_back(std::move(item));
      else
        kept.push_back(std::move(item));
    }
    items_.swap(kept);
    return removed;
  }

  /// Close and return everything still queued (shutdown drain).  After
  /// close(), try_push fails and pop_wait returns nullopt once empty.
  [[nodiscard]] std::vector<T> close_and_drain() {
    std::vector<T> drained;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      for (T& item : items_) drained.push_back(std::move(item));
      items_.clear();
    }
    not_empty_.notify_all();
    return drained;
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mersit::core
