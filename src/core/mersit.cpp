#include "core/mersit.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace mersit::core {

MersitFormat::MersitFormat(int nbits, int es)
    : nbits_(nbits), es_(es), groups_((nbits - 2) / (es > 0 ? es : 1)) {
  if (nbits != 8) throw std::invalid_argument("MersitFormat: only 8-bit words supported");
  if (es < 1 || (nbits - 2) % es != 0)
    throw std::invalid_argument("MersitFormat: es must divide nbits-2");
}

std::string MersitFormat::name() const {
  return "MERSIT(" + std::to_string(nbits_) + "," + std::to_string(es_) + ")";
}

std::uint32_t MersitFormat::ec(std::uint8_t code, int i) const {
  const int shift = (groups_ - 1 - i) * es_;
  return (static_cast<std::uint32_t>(code) >> shift) & ((1u << es_) - 1u);
}

MersitFormat::Fields MersitFormat::fields(std::uint8_t code) const {
  Fields f;
  f.sign = (code & 0x80u) != 0;
  f.ks = (code & 0x40u) != 0;
  const std::uint32_t ec_all_ones = (1u << es_) - 1u;

  int g = -1;
  for (int i = 0; i < groups_; ++i) {
    if (ec(code, i) != ec_all_ones) {
      g = i;
      break;
    }
  }
  if (g < 0) {  // every EC is all-ones: zero or NaR
    f.is_zero = !f.ks;
    f.is_nar = f.ks;
    return f;
  }
  f.g = g;
  f.k = f.ks ? g : -(g + 1);
  f.exp = static_cast<int>(ec(code, g));
  f.frac_bits = frac_bits_for_group(g);
  f.frac = static_cast<std::uint32_t>(code) & ((1u << f.frac_bits) - 1u);
  return f;
}

std::uint8_t MersitFormat::pack(const Fields& f) const {
  const std::uint32_t sign_bit = f.sign ? 0x80u : 0u;
  const std::uint32_t ec_all_ones = (1u << es_) - 1u;
  if (f.is_zero) return static_cast<std::uint8_t>(0x3Fu);
  if (f.is_nar) return static_cast<std::uint8_t>(sign_bit | 0x7Fu);
  assert(f.g >= 0 && f.g < groups_);
  assert(f.exp >= 0 && static_cast<std::uint32_t>(f.exp) < ec_all_ones);
  std::uint32_t body = f.ks ? 0x40u : 0u;
  for (int i = 0; i < f.g; ++i)
    body |= ec_all_ones << ((groups_ - 1 - i) * es_);
  body |= static_cast<std::uint32_t>(f.exp) << ((groups_ - 1 - f.g) * es_);
  const int fb = frac_bits_for_group(f.g);
  assert(f.frac < (1u << fb) || fb == 0);
  body |= f.frac & (fb > 0 ? (1u << fb) - 1u : 0u);
  return static_cast<std::uint8_t>(sign_bit | body);
}

formats::Decoded MersitFormat::decode(std::uint8_t code) const {
  const Fields f = fields(code);
  formats::Decoded d;
  d.sign = f.sign;
  if (f.is_zero) {
    d.cls = formats::ValueClass::kZero;
    return d;
  }
  if (f.is_nar) {
    d.cls = formats::ValueClass::kInf;
    return d;
  }
  d.cls = formats::ValueClass::kFinite;
  d.exponent = f.effective_exponent(es_);
  d.fraction = f.frac;
  d.frac_bits = f.frac_bits;
  return d;
}

std::uint8_t MersitFormat::zero_code() const { return 0x3Fu; }
std::uint8_t MersitFormat::nar_code() const { return 0x7Fu; }

std::uint8_t MersitFormat::max_code() const {
  Fields f;
  f.ks = true;
  f.g = groups_ - 1;
  f.exp = (1 << es_) - 2;
  return pack(f);
}

std::uint8_t MersitFormat::min_pos_code() const {
  Fields f;
  f.ks = false;
  f.g = groups_ - 1;
  f.exp = 0;
  return pack(f);
}

namespace {

/// floor division for possibly-negative numerators.
int floor_div(int a, int b) {
  int q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

}  // namespace

std::uint8_t MersitFormat::encode_direct(double x) const {
  if (std::isnan(x) || x == 0.0) return zero_code();
  const bool sign = x < 0.0;
  const std::uint32_t sign_bit = sign ? 0x80u : 0u;
  const double a = std::fabs(x);
  const int w = regime_weight();

  const double max_val = std::ldexp(1.0, max_eff_exponent());  // max has no frac bits
  const double min_val = std::ldexp(1.0, min_eff_exponent());
  if (a >= max_val) return static_cast<std::uint8_t>(max_code() | sign_bit);
  if (a <= min_val) return static_cast<std::uint8_t>(min_pos_code() | sign_bit);

  int e = 0;
  (void)std::frexp(a, &e);
  e -= 1;  // a = 1.xxx * 2^e,  min_eff <= e <= max_eff here

  // Map the effective exponent to (k, exp, g, frac_bits) for this binade.
  const auto binade_fields = [&](int eff) {
    Fields f;
    f.sign = sign;
    f.k = floor_div(eff, w);
    f.exp = eff - f.k * w;
    f.ks = f.k >= 0;
    f.g = f.ks ? f.k : -f.k - 1;
    f.frac_bits = frac_bits_for_group(f.g);
    return f;
  };

  Fields f = binade_fields(e);
  const double scaled = std::ldexp(a, f.frac_bits - e);  // in [2^fb, 2^(fb+1))
  const double fl = std::floor(scaled);
  const double rem = scaled - fl;
  auto lattice = static_cast<std::uint32_t>(fl);

  const auto make_code = [&](int eff, std::uint32_t significand) -> std::uint8_t {
    // significand includes the hidden bit at position frac_bits of its binade.
    Fields bf = binade_fields(eff);
    bf.frac = significand & ((bf.frac_bits > 0 ? (1u << bf.frac_bits) : 1u) - 1u);
    if (bf.frac_bits == 0) bf.frac = 0;
    return pack(bf);
  };

  const auto round_up_code = [&]() -> std::uint8_t {
    if (lattice + 1u == (2u << f.frac_bits)) {  // carry into the next binade
      if (e + 1 > max_eff_exponent()) return max_code();
      return make_code(e + 1, 1u << binade_fields(e + 1).frac_bits);
    }
    return make_code(e, lattice + 1u);
  };

  std::uint8_t body;
  if (rem < 0.5) {
    body = make_code(e, lattice);
  } else if (rem > 0.5) {
    body = round_up_code();
  } else {
    // Exact tie: same rule as TableCodec — the lower neighbour wins when its
    // code is even, otherwise the upper neighbour.
    const std::uint8_t lo = make_code(e, lattice);
    body = ((lo & 1u) == 0) ? lo : round_up_code();
  }
  return static_cast<std::uint8_t>(body | sign_bit);
}

std::vector<MersitFormat::TableRow> MersitFormat::decode_table() const {
  std::vector<TableRow> rows;
  const auto body_pattern = [&](std::uint8_t code, int frac_bits) {
    std::string s;
    for (int b = 6; b >= 0; --b) {
      if (b < frac_bits)
        s += 'x';
      else
        s += ((code >> b) & 1u) ? '1' : '0';
    }
    return s;
  };
  // Zero row first (smallest "value"), then ascending effective exponent,
  // then NaR, mirroring Table 1's layout.
  {
    TableRow r;
    r.body = body_pattern(zero_code(), 0);
    r.special = true;
    r.label = "zero";
    rows.push_back(r);
  }
  for (int eff = min_eff_exponent(); eff <= max_eff_exponent(); ++eff) {
    Fields f;
    f.k = floor_div(eff, regime_weight());
    f.exp = eff - f.k * regime_weight();
    f.ks = f.k >= 0;
    f.g = f.ks ? f.k : -f.k - 1;
    const std::uint8_t code = pack(f);
    TableRow r;
    r.k = f.k;
    r.exp = f.exp;
    r.eff_exp = eff;
    r.frac_bits = frac_bits_for_group(f.g);
    r.body = body_pattern(code, r.frac_bits);
    rows.push_back(r);
  }
  {
    TableRow r;
    r.body = body_pattern(nar_code(), 0);
    r.special = true;
    r.label = "+/-inf";
    rows.push_back(r);
  }
  return rows;
}

const MersitFormat& mersit_8_2() {
  static const MersitFormat fmt(8, 2);
  return fmt;
}

const MersitFormat& mersit_8_3() {
  static const MersitFormat fmt(8, 3);
  return fmt;
}

}  // namespace mersit::core
