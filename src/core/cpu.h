// Host CPU feature detection for the runtime-dispatched SIMD backends.
//
// One CPUID probe per process (GCC/Clang's __builtin_cpu_supports on x86,
// architecture macros elsewhere), cached in a static so callers can query on
// every dispatch without cost.  The GEMM backend registry keys off these
// bits: auto-detection walks its backend list best-first and picks the first
// one whose required features the host actually has, and a forced
// MERSIT_BACKEND that names a backend the host cannot execute is rejected
// loudly instead of faulting on the first illegal instruction.
#pragma once

#include <string>

namespace mersit::core {

/// Feature bits the SIMD backends care about.  `avx512f` implies the host
/// also passed the OS XSAVE/ZMM-state check that __builtin_cpu_supports
/// performs, so a true bit means the instructions are actually executable,
/// not merely advertised by CPUID.
struct CpuFeatures {
  bool avx2 = false;     ///< x86: 256-bit integer/float SIMD
  bool avx512f = false;  ///< x86: 512-bit foundation (masked ops included)
  bool avx512vnni = false;  ///< x86: vpdpbusd int8 dot-product (DL Boost)
  bool neon = false;     ///< aarch64: Advanced SIMD (baseline on AArch64)
  bool dotprod = false;  ///< aarch64: sdot/udot int8 dot-product (ARMv8.2)
};

/// The host's features, probed once per process (thread-safe static init).
[[nodiscard]] const CpuFeatures& cpu_features();

/// Human-readable summary ("x86-64 avx2 avx512f", "aarch64 neon",
/// "baseline") for bench reports and error messages.
[[nodiscard]] std::string cpu_feature_summary();

}  // namespace mersit::core
