#include "core/cpu.h"

namespace mersit::core {

namespace {

CpuFeatures probe() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(_M_X64)
  // __builtin_cpu_supports consults libgcc's cached CPUID model, which
  // includes the XGETBV check that the OS saves/restores the wide register
  // state — a true bit means the instructions will actually execute.
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.avx512f = __builtin_cpu_supports("avx512f") != 0;
  // VNNI rides the same XSAVE/ZMM-state check as avx512f; require both so a
  // true bit always means the int8 vpdpbusd kernel can execute.
  f.avx512vnni =
      f.avx512f && __builtin_cpu_supports("avx512vnni") != 0;
#elif defined(__aarch64__)
  // Advanced SIMD is architecturally mandatory on AArch64.
  f.neon = true;
  // No portable runtime probe without getauxval plumbing; trust the compile
  // target (the NEON TU only emits sdot when the target guarantees it).
#if defined(__ARM_FEATURE_DOTPROD)
  f.dotprod = true;
#endif
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = probe();
  return f;
}

std::string cpu_feature_summary() {
  const CpuFeatures& f = cpu_features();
  std::string s;
#if defined(__x86_64__) || defined(_M_X64)
  s = "x86-64";
#elif defined(__aarch64__)
  s = "aarch64";
#else
  s = "baseline";
#endif
  if (f.avx2) s += " avx2";
  if (f.avx512f) s += " avx512f";
  if (f.avx512vnni) s += " avx512vnni";
  if (f.neon) s += " neon";
  if (f.dotprod) s += " dotprod";
  return s;
}

}  // namespace mersit::core
