// Runtime registry of every data format studied in the paper.
//
// Names follow the paper's notation: "INT8", "FP(8,E)" for E in 2..5,
// "Posit(8,es)" for es in 0..3 (the paper's sign-magnitude variant),
// "StdPosit(8,es)" for the two's-complement standard posit, and
// "MERSIT(8,es)" for es in {2,3}.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "formats/format.h"

namespace mersit::core {

/// Construct a format by its paper name; throws std::invalid_argument on an
/// unknown name.
[[nodiscard]] std::shared_ptr<const formats::Format> make_format(const std::string& name);

/// The 11 quantized-format columns of Table 2, in column order:
/// INT8, FP(8,2..5), Posit(8,0..3), MERSIT(8,2), MERSIT(8,3).
[[nodiscard]] std::vector<std::shared_ptr<const formats::Format>> table2_formats();

/// The nine configurations charted in Fig. 4:
/// FP(8,2..5), Posit(8,0..2), MERSIT(8,2), MERSIT(8,3).
[[nodiscard]] std::vector<std::shared_ptr<const formats::Format>> fig4_formats();

/// The three head-to-head configurations of Figs. 6/7 and Table 3:
/// FP(8,4), Posit(8,1), MERSIT(8,2).
[[nodiscard]] std::vector<std::shared_ptr<const formats::Format>> headline_formats();

/// Every name make_format() accepts (the full registry), for exhaustive
/// sweeps such as the decode-contract tests and resilience campaigns.
[[nodiscard]] std::vector<std::string> all_format_names();

}  // namespace mersit::core
