// Monotonic clock shim for the serving layer.
//
// All serving timestamps (enqueue times, deadlines, heartbeats) are plain
// int64 nanosecond counts on one monotonic timeline, not time_points, so
// they can live in atomics, serialize into stats, and subtract without
// casts.  The clock is injectable (ClockFn) so deadline logic is unit-
// testable without real waiting; production code uses mono_now_ns(), which
// is std::chrono::steady_clock — never the wall clock, which jumps under
// NTP and would turn a clock step into a mass deadline expiry.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

namespace mersit::core {

/// Nanoseconds on the process-local monotonic timeline.
using MonoNanos = std::int64_t;

[[nodiscard]] inline MonoNanos mono_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Injectable time source; defaults to mono_now_ns in production.
using ClockFn = std::function<MonoNanos()>;

inline constexpr MonoNanos kNanosPerMicro = 1'000;
inline constexpr MonoNanos kNanosPerMilli = 1'000'000;
inline constexpr MonoNanos kNanosPerSecond = 1'000'000'000;

}  // namespace mersit::core
