// 64-byte-aligned storage for SIMD-consumed buffers.
//
// The GEMM backends load packed panels with aligned vector instructions, so
// every panel allocation — PackedMatrix::data for prepacked weights and the
// ScratchArena blocks behind per-call packs — must start on a 64-byte
// boundary (one cache line, the widest vector width we dispatch to).
// std::vector's default allocator and std::make_unique only guarantee
// alignof(std::max_align_t) (16 on x86-64 glibc), hence this allocator.
//
// Debug builds assert the invariant at the point of use via
// MERSIT_ASSERT_ALIGNED; release builds compile it away.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace mersit::core {

/// Alignment every SIMD-consumed buffer gets: one cache line, enough for a
/// full AVX-512 register and any narrower ISA.
inline constexpr std::size_t kSimdAlign = 64;

[[nodiscard]] inline bool is_aligned(const void* p,
                                     std::size_t align = kSimdAlign) {
  return (reinterpret_cast<std::uintptr_t>(p) & (align - 1)) == 0;
}

/// std::allocator drop-in whose allocations are kSimdAlign-aligned.
/// Stateless, so all instances compare equal and container moves/swaps keep
/// their O(1) guarantees.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}  // NOLINT

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kSimdAlign}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kSimdAlign});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// Vector whose data() is always kSimdAlign-aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace mersit::core

/// Debug-build check that `p` sits on a kSimdAlign boundary (no-op when
/// NDEBUG).  A macro so the failing expression shows the callsite pointer.
#define MERSIT_ASSERT_ALIGNED(p) \
  assert((p) == nullptr || ::mersit::core::is_aligned(p))
