// Strict environment-variable parsing shared by every MERSIT_* knob.
//
// The old behaviour — silently falling back to a default when MERSIT_THREADS
// held garbage — turned typos ("MERSIT_THREADS=eight", "MERSIT_THREADS=0")
// into mysterious perf or correctness differences.  Serving config makes
// this worse: a fat-fingered MERSIT_SERVE_QUEUE must not quietly size a
// production queue to a default.  Policy, therefore:
//
//   * variable unset, or set to the empty string  -> caller's fallback
//     (the empty string is how shells "unset" a var for one command);
//   * anything else that is not an integer in the caller's range
//     -> std::runtime_error naming the variable, the offending value, and
//     the accepted range.  Loud beats lucky.
#pragma once

#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace mersit::core {

/// Parse `name` as a base-10 integer in [lo, hi]; `fallback` when unset or
/// empty, std::runtime_error on anything malformed or out of range.
[[nodiscard]] inline long env_int(const char* name, long fallback, long lo,
                                  long hi) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || errno == ERANGE || v < lo || v > hi)
    throw std::runtime_error(std::string(name) + "='" + env +
                             "': expected an integer in [" + std::to_string(lo) +
                             ", " + std::to_string(hi) + "]");
  return v;
}

/// String form of the same unset policy: nullptr when `name` is unset or set
/// to the empty string, the raw value otherwise.  Validation stays with the
/// caller — which knows the accepted value set — and must follow the same
/// loud-beats-lucky rule: an unrecognized value throws naming the variable,
/// the value, and the accepted set (see gemm::parse_backend for the
/// MERSIT_BACKEND instance, qgemm's parse_mode for MERSIT_QGEMM).
[[nodiscard]] inline const char* env_str(const char* name) {
  const char* env = std::getenv(name);
  return (env == nullptr || env[0] == '\0') ? nullptr : env;
}

}  // namespace mersit::core
