// Deployment round trip: train FP32 -> pack weights into true 8-bit MERSIT
// codes -> save/load the binary container -> unpack into a fresh model ->
// verify accuracy survives, and run one layer's worth of dot products
// through the exact Kulisch reference as an accelerator would.
//
//   ./deploy_quantized [format]       default MERSIT(8,2)
#include <cstdio>
#include <random>
#include <sstream>

#include "core/registry.h"
#include "hw/reference.h"
#include "nn/data.h"
#include "ptq/ptq.h"
#include "ptq/serialize.h"

using namespace mersit;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "MERSIT(8,2)";
  const auto fmt = core::make_format(name);

  // 1. Train a small model.
  const nn::Dataset train = nn::make_vision_dataset(640, 3, 12, 101);
  const nn::Dataset test = nn::make_vision_dataset(256, 3, 12, 102);
  std::mt19937 rng(1);
  auto model = nn::make_vgg_mini(3, 10, rng);
  nn::TrainOptions opt;
  opt.epochs = 4;
  opt.batch = 32;
  opt.lr = 2e-3f;
  std::printf("Training VGG-mini...\n");
  (void)nn::train_classifier(*model, train, opt);
  const float fp32 = ptq::evaluate_fp32(*model, test, ptq::Metric::kAccuracy);

  // 2. Pack weights into 8-bit codes and serialize.
  const ptq::QuantizedModel qm = ptq::pack_weights(*model, *fmt);
  std::stringstream blob;
  qm.save(blob);
  std::int64_t elems = 0;
  for (const auto& t : qm.tensors) elems += t.numel();
  std::printf("Packed %lld weights into %zu bytes (%s codes + FP32 scales; "
              "FP32 would be %lld bytes)\n",
              static_cast<long long>(elems), qm.byte_size(), name.c_str(),
              static_cast<long long>(4 * elems));

  // 3. Load into a freshly initialized model of the same architecture.
  std::mt19937 rng2(999);  // different init: everything comes from the blob
  auto deployed = nn::make_vgg_mini(3, 10, rng2);
  const ptq::QuantizedModel loaded = ptq::QuantizedModel::load(blob);
  ptq::unpack_weights(*deployed, loaded, *fmt);
  const float deployed_acc =
      ptq::evaluate_fp32(*deployed, test, ptq::Metric::kAccuracy);
  std::printf("Accuracy: FP32 %.2f%% -> deployed (weights quantized) %.2f%%\n",
              fp32, deployed_acc);

  // 4. One dot product through the exact hardware model.
  const auto* ef = dynamic_cast<const formats::ExponentCodedFormat*>(fmt.get());
  if (ef != nullptr) {
    const ptq::QuantizedTensor& t0 = loaded.tensors.front();
    const std::size_t n = t0.codes.size() / static_cast<std::size_t>(t0.channels);
    std::vector<std::uint8_t> w(t0.codes.begin(),
                                t0.codes.begin() + static_cast<std::ptrdiff_t>(n));
    std::vector<std::uint8_t> a(n);
    std::mt19937 rng3(5);
    std::normal_distribution<double> dist(0.0, 0.5);
    for (auto& c : a) c = fmt->encode(dist(rng3));
    double fp64 = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      fp64 += fmt->decode_value(w[i]) * fmt->decode_value(a[i]);
    const double exact = hw::kulisch_dot(*ef, w, a);
    std::printf("Kulisch dot over channel 0 (%zu MACs): %.10f (|err vs fp64| = %.1e)\n",
                n, exact, std::fabs(exact - fp64));
  }
  return 0;
}
