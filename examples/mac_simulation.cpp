// Gate-level MAC walkthrough: build the MERSIT(8,2) MAC netlist, run a dot
// product through it cycle by cycle, verify against the exact reference and
// a double-precision result, and print the area/power report.
//
//   ./mac_simulation [format]            default MERSIT(8,2)
//   ./mac_simulation [format] --verilog  also dump the decoder and MAC as
//                                        structural Verilog (<fmt>_decoder.v
//                                        and <fmt>_mac.v in the cwd)
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>

#include "core/registry.h"
#include "hw/decoder.h"
#include "hw/power.h"
#include "hw/reference.h"
#include "rtl/sim.h"
#include "rtl/verilog.h"

using namespace mersit;

namespace {

/// "MERSIT(8,2)" -> "mersit_8_2" for module and file names.
std::string slug(const std::string& name) {
  std::string s;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0)
      s.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    else if (!s.empty() && s.back() != '_')
      s.push_back('_');
  }
  while (!s.empty() && s.back() == '_') s.pop_back();
  return s;
}

int dump_verilog(const formats::Format& fmt, const std::string& name) {
  const std::string base = slug(name);
  {
    rtl::Netlist nl;
    const hw::DecoderPorts dec = hw::build_decoder(nl, fmt);
    const auto ports = hw::decoder_output_ports(dec);
    std::ofstream os(base + "_decoder.v", std::ios::binary);
    os << rtl::to_verilog(nl, base + "_decoder", ports);
    std::printf("wrote %s_decoder.v (%zu cells)\n", base.c_str(), nl.cell_count());
  }
  {
    rtl::Netlist nl;
    const hw::MacPorts mac = hw::build_mac(nl, fmt);
    const auto ports = hw::mac_output_ports(mac);
    std::ofstream os(base + "_mac.v", std::ios::binary);
    os << rtl::to_verilog(nl, base + "_mac", ports);
    std::printf("wrote %s_mac.v (%zu cells)\n", base.c_str(), nl.cell_count());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string name = "MERSIT(8,2)";
  bool verilog = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verilog") == 0)
      verilog = true;
    else
      name = argv[i];
  }
  const auto fmt = core::make_format(name);
  const auto* ef = dynamic_cast<const formats::ExponentCodedFormat*>(fmt.get());
  if (ef == nullptr) {
    std::fprintf(stderr, "%s has no hardware MAC in this library\n", name.c_str());
    return 1;
  }
  if (verilog) {
    const int rc = dump_verilog(*fmt, name);
    if (rc != 0) return rc;
    std::printf("\n");
  }

  // 1. Build the netlist.
  rtl::Netlist nl;
  const hw::MacPorts mac = hw::build_mac(nl, *fmt);
  std::printf("%s MAC: P=%d M=%d W=%d V=%d -> %d-bit Kulisch accumulator, %zu cells\n\n",
              name.c_str(), mac.cfg.spec.p, mac.cfg.spec.m, mac.cfg.w, mac.cfg.v,
              mac.cfg.acc_width, nl.cell_count());

  // 2. Drive a small dot product through it.
  rtl::Simulator sim(nl);
  hw::MacReference ref(*ef);
  std::mt19937 rng(42);
  std::normal_distribution<double> dist(0.0, 0.8);
  double exact = 0.0;
  std::printf("%5s %10s %10s %16s %16s\n", "cycle", "w", "a", "acc(netlist)",
              "acc(value)");
  for (int cycle = 0; cycle < 12; ++cycle) {
    const double wv = dist(rng), av = dist(rng);
    const std::uint8_t wc = fmt->encode(wv), ac = fmt->encode(av);
    sim.set_input_bus(mac.wdec.code, wc);
    sim.set_input_bus(mac.adec.code, ac);
    sim.eval();
    sim.clock();
    ref.accumulate(wc, ac);
    exact += fmt->decode_value(wc) * fmt->decode_value(ac);
    std::printf("%5d %10.4f %10.4f %16lld %16.8f\n", cycle,
                fmt->decode_value(wc), fmt->decode_value(ac),
                static_cast<long long>(sim.get_bus_signed(mac.acc)), ref.value());
    if (sim.get_bus_signed(mac.acc) != ref.acc_raw()) {
      std::fprintf(stderr, "MISMATCH netlist vs reference!\n");
      return 1;
    }
  }
  std::printf("\nKulisch accumulation is exact: |netlist - fp64| = %.2e\n",
              ref.value() - exact);

  // 3. Area / power report on a realistic stream.
  std::vector<float> w(1000), a(1000);
  for (auto& v : w) v = static_cast<float>(dist(rng));
  for (auto& v : a) v = static_cast<float>(std::fabs(dist(rng)));
  const auto stream = hw::make_code_stream(*fmt, w, a, 1.0, 1.0);
  const hw::MacCost cost = hw::measure_mac(*fmt, stream);
  std::printf("\nArea %.1f um^2, power %.2f uW @100MHz. Components:\n",
              cost.area_um2, cost.power_uw);
  for (const auto& c : cost.components)
    std::printf("  %-16s %8.1f um^2 %8.2f uW\n", c.name.c_str(), c.area_um2,
                c.power_uw);
  return 0;
}
