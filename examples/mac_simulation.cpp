// Gate-level MAC walkthrough: build the MERSIT(8,2) MAC netlist, run a dot
// product through it cycle by cycle, verify against the exact reference and
// a double-precision result, and print the area/power report.
//
//   ./mac_simulation [format]     default MERSIT(8,2)
#include <cstdio>
#include <random>

#include "core/registry.h"
#include "hw/power.h"
#include "hw/reference.h"
#include "rtl/sim.h"

using namespace mersit;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "MERSIT(8,2)";
  const auto fmt = core::make_format(name);
  const auto* ef = dynamic_cast<const formats::ExponentCodedFormat*>(fmt.get());
  if (ef == nullptr) {
    std::fprintf(stderr, "%s has no hardware MAC in this library\n", name.c_str());
    return 1;
  }

  // 1. Build the netlist.
  rtl::Netlist nl;
  const hw::MacPorts mac = hw::build_mac(nl, *fmt);
  std::printf("%s MAC: P=%d M=%d W=%d V=%d -> %d-bit Kulisch accumulator, %zu cells\n\n",
              name.c_str(), mac.cfg.spec.p, mac.cfg.spec.m, mac.cfg.w, mac.cfg.v,
              mac.cfg.acc_width, nl.cell_count());

  // 2. Drive a small dot product through it.
  rtl::Simulator sim(nl);
  hw::MacReference ref(*ef);
  std::mt19937 rng(42);
  std::normal_distribution<double> dist(0.0, 0.8);
  double exact = 0.0;
  std::printf("%5s %10s %10s %16s %16s\n", "cycle", "w", "a", "acc(netlist)",
              "acc(value)");
  for (int cycle = 0; cycle < 12; ++cycle) {
    const double wv = dist(rng), av = dist(rng);
    const std::uint8_t wc = fmt->encode(wv), ac = fmt->encode(av);
    sim.set_input_bus(mac.wdec.code, wc);
    sim.set_input_bus(mac.adec.code, ac);
    sim.eval();
    sim.clock();
    ref.accumulate(wc, ac);
    exact += fmt->decode_value(wc) * fmt->decode_value(ac);
    std::printf("%5d %10.4f %10.4f %16lld %16.8f\n", cycle,
                fmt->decode_value(wc), fmt->decode_value(ac),
                static_cast<long long>(sim.get_bus_signed(mac.acc)), ref.value());
    if (sim.get_bus_signed(mac.acc) != ref.acc_raw()) {
      std::fprintf(stderr, "MISMATCH netlist vs reference!\n");
      return 1;
    }
  }
  std::printf("\nKulisch accumulation is exact: |netlist - fp64| = %.2e\n",
              ref.value() - exact);

  // 3. Area / power report on a realistic stream.
  std::vector<float> w(1000), a(1000);
  for (auto& v : w) v = static_cast<float>(dist(rng));
  for (auto& v : a) v = static_cast<float>(std::fabs(dist(rng)));
  const auto stream = hw::make_code_stream(*fmt, w, a, 1.0, 1.0);
  const hw::MacCost cost = hw::measure_mac(*fmt, stream);
  std::printf("\nArea %.1f um^2, power %.2f uW @100MHz. Components:\n",
              cost.area_um2, cost.power_uw);
  for (const auto& c : cost.components)
    std::printf("  %-16s %8.1f um^2 %8.2f uW\n", c.name.c_str(), c.area_um2,
                c.power_uw);
  return 0;
}
