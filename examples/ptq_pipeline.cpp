// End-to-end PTQ pipeline on one model: train FP32 -> fold BN -> calibrate
// -> quantize into several formats -> report accuracy, exactly as the
// Table-2 experiments do but small enough to run in under a minute.
//
//   ./ptq_pipeline [model]    model in {vgg, resnet, mobilenet_v2,
//                             mobilenet_v3, efficientnet_b0, efficientnet_v2}
#include <cstdio>
#include <cstring>

#include "core/registry.h"
#include "nn/data.h"
#include "ptq/ptq.h"

using namespace mersit;

int main(int argc, char** argv) {
  const char* which = argc > 1 ? argv[1] : "mobilenet_v3";
  std::mt19937 rng(1);
  nn::ModulePtr model;
  if (std::strcmp(which, "vgg") == 0) model = nn::make_vgg_mini(3, 10, rng);
  else if (std::strcmp(which, "resnet") == 0) model = nn::make_resnet_mini(3, 10, 2, rng);
  else if (std::strcmp(which, "mobilenet_v2") == 0) model = nn::make_mobilenet_v2_mini(3, 10, rng);
  else if (std::strcmp(which, "mobilenet_v3") == 0) model = nn::make_mobilenet_v3_mini(3, 10, rng);
  else if (std::strcmp(which, "efficientnet_b0") == 0) model = nn::make_efficientnet_b0_mini(3, 10, rng);
  else if (std::strcmp(which, "efficientnet_v2") == 0) model = nn::make_efficientnet_v2_mini(3, 10, rng);
  else {
    std::fprintf(stderr, "unknown model '%s'\n", which);
    return 1;
  }
  std::printf("Model: %s-mini (%lld parameters)\n", which,
              static_cast<long long>(nn::parameter_count(*model)));

  // 1. Train in FP32 on the synthetic vision task.
  const nn::Dataset train = nn::make_vision_dataset(640, 3, 12, 101);
  const nn::Dataset test = nn::make_vision_dataset(256, 3, 12, 102);
  const nn::Dataset calib = nn::make_vision_dataset(128, 3, 12, 103);
  nn::TrainOptions opt;
  opt.epochs = 4;
  opt.batch = 32;
  opt.lr = 2e-3f;
  opt.verbose = true;
  std::printf("Training (%d samples, %d epochs)...\n", train.size(), opt.epochs);
  (void)nn::train_classifier(*model, train, opt);

  // 2. Fold batch norms (PTQ operates on deployment-form weights).
  nn::fold_all_batchnorms(*model);
  const float fp32 = ptq::evaluate_fp32(*model, test, ptq::Metric::kAccuracy);
  std::printf("\nFP32 accuracy: %.2f%%\n\n", fp32);

  // 3. Calibrate + quantize + evaluate per format.
  std::printf("%-14s %10s %10s\n", "Format", "Accuracy", "vs FP32");
  for (const char* name : {"INT8", "FP(8,2)", "FP(8,4)", "Posit(8,1)",
                           "MERSIT(8,2)", "MERSIT(8,3)"}) {
    const auto fmt = core::make_format(name);
    const float acc = ptq::evaluate_ptq(*model, calib, test, *fmt);
    std::printf("%-14s %9.2f%% %+9.2f\n", name, acc, acc - fp32);
  }
  return 0;
}
