// End-to-end PTQ pipeline on one model: train FP32 -> fold BN -> calibrate
// -> quantize into several formats -> report accuracy, exactly as the
// Table-2 experiments do but small enough to run in under a minute.
// Finishes with the calibrate-once / deploy-many flow: the calibration is
// saved as a portable path-keyed MCT1 artifact and replayed on a clone()
// replica, reproducing the quantized accuracy bit for bit.
//
//   ./ptq_pipeline [model]    model in {vgg, resnet, mobilenet_v2,
//                             mobilenet_v3, efficientnet_b0, efficientnet_v2}
#include <cstdio>
#include <cstring>
#include <sstream>

#include "core/registry.h"
#include "nn/data.h"
#include "ptq/ptq.h"

using namespace mersit;

int main(int argc, char** argv) {
  const char* which = argc > 1 ? argv[1] : "mobilenet_v3";
  std::mt19937 rng(1);
  nn::ModulePtr model;
  if (std::strcmp(which, "vgg") == 0) model = nn::make_vgg_mini(3, 10, rng);
  else if (std::strcmp(which, "resnet") == 0) model = nn::make_resnet_mini(3, 10, 2, rng);
  else if (std::strcmp(which, "mobilenet_v2") == 0) model = nn::make_mobilenet_v2_mini(3, 10, rng);
  else if (std::strcmp(which, "mobilenet_v3") == 0) model = nn::make_mobilenet_v3_mini(3, 10, rng);
  else if (std::strcmp(which, "efficientnet_b0") == 0) model = nn::make_efficientnet_b0_mini(3, 10, rng);
  else if (std::strcmp(which, "efficientnet_v2") == 0) model = nn::make_efficientnet_v2_mini(3, 10, rng);
  else {
    std::fprintf(stderr, "unknown model '%s'\n", which);
    return 1;
  }
  std::printf("Model: %s-mini (%lld parameters)\n", which,
              static_cast<long long>(nn::parameter_count(*model)));

  // 1. Train in FP32 on the synthetic vision task.
  const nn::Dataset train = nn::make_vision_dataset(640, 3, 12, 101);
  const nn::Dataset test = nn::make_vision_dataset(256, 3, 12, 102);
  const nn::Dataset calib = nn::make_vision_dataset(128, 3, 12, 103);
  nn::TrainOptions opt;
  opt.epochs = 4;
  opt.batch = 32;
  opt.lr = 2e-3f;
  opt.verbose = true;
  std::printf("Training (%d samples, %d epochs)...\n", train.size(), opt.epochs);
  (void)nn::train_classifier(*model, train, opt);

  // 2. Fold batch norms (PTQ operates on deployment-form weights).
  nn::fold_all_batchnorms(*model);
  const float fp32 = ptq::evaluate_fp32(*model, test, ptq::Metric::kAccuracy);
  std::printf("\nFP32 accuracy: %.2f%%\n\n", fp32);

  // 3. Calibrate + quantize + evaluate per format.
  std::printf("%-14s %10s %10s\n", "Format", "Accuracy", "vs FP32");
  for (const char* name : {"INT8", "FP(8,2)", "FP(8,4)", "Posit(8,1)",
                           "MERSIT(8,2)", "MERSIT(8,3)"}) {
    const auto fmt = core::make_format(name);
    const float acc = ptq::evaluate_ptq(*model, calib, test, *fmt);
    std::printf("%-14s %9.2f%% %+9.2f\n", name, acc, acc - fp32);
  }

  // 4. Calibrate once, deploy many: run the calibration pass once, save the
  // path-keyed table as an MCT1 artifact, and replay it on replicas without
  // touching the calibration set again.
  const ptq::CalibrationTable table = ptq::calibrate_model(*model, calib);
  std::printf("\nCalibration table: model '%s', %zu quant points, %zu bytes\n",
              table.model_name.c_str(), table.absmax.size(), table.byte_size());
  std::printf("%-44s %10s\n", "Module path", "absmax");
  for (const auto& [path, mx] : table.absmax)
    std::printf("%-44s %10.5f\n", path.c_str(), mx);

  // In a real deployment the stream is a file; the bytes are the contract.
  std::stringstream artifact;
  table.save(artifact);
  const ptq::CalibrationTable loaded = ptq::CalibrationTable::load(artifact);

  // The replica never sees the calibration data, only the artifact, yet its
  // quantized accuracy matches the calibrated original exactly: the table is
  // keyed by stable module paths, not object identity.
  const auto fmt = core::make_format("MERSIT(8,2)");
  const nn::ModulePtr replica = model->clone();
  const float acc_orig = ptq::evaluate_with_table(*model, loaded, test, *fmt);
  const float acc_replica = ptq::evaluate_with_table(*replica, loaded, test, *fmt);
  std::printf("\nMERSIT(8,2) via saved table: original %.2f%%, clone %.2f%% (%s)\n",
              acc_orig, acc_replica,
              acc_orig == acc_replica ? "bit-identical" : "MISMATCH");
  return acc_orig == acc_replica ? 0 : 1;
}
