// Fault-injection walkthrough: corrupt a quantized artifact bit by bit,
// compare the two corruption policies, then put a stuck-at fault and a
// transient SEU on the MERSIT MAC netlist and classify what they do.
//
// Everything is seeded — run it twice and the numbers are identical.
#include <cstdio>
#include <random>

#include "core/registry.h"
#include "fault/bitflip.h"
#include "fault/campaign.h"
#include "hw/mac.h"
#include "hw/reference.h"
#include "nn/data.h"
#include "nn/models.h"
#include "ptq/ptq.h"
#include "rtl/sim.h"

using namespace mersit;

int main() {
  const auto fmt = core::make_format("MERSIT(8,2)");
  // FP(8,4) for the artifact sections: IEEE-style FP8 reserves a whole band
  // of NaN/Inf codes, so random flips actually land on them.  (MERSIT has a
  // single NaR word — one reason its artifacts corrupt more gracefully.)
  const auto afmt = core::make_format("FP(8,4)");

  // --- 1. Corrupt a packed artifact at a fixed bit-error rate. -------------
  std::printf("== 1. Bit errors in a packed QuantizedModel ==\n\n");
  std::mt19937 rng(7);
  auto model = nn::make_vgg_mini(3, 10, rng);
  const nn::Dataset test = nn::make_vision_dataset(96, 3, 12, 5);
  const ptq::WeightSnapshot fp32 = ptq::snapshot_weights(*model);

  ptq::QuantizedModel artifact = ptq::pack_weights(*model, *afmt);
  fault::BitFlipInjector injector(/*seed=*/2024);
  const fault::InjectionReport rep = injector.inject_ber(artifact, 1e-2);
  std::printf("%s artifact: %llu codes; BER 1e-2 flipped %llu bits in %llu "
              "codes\n\n", afmt->name().c_str(),
              static_cast<unsigned long long>(rep.total_codes),
              static_cast<unsigned long long>(rep.bits_flipped),
              static_cast<unsigned long long>(rep.codes_touched));

  // --- 2. Policy comparison: propagate vs zero-substitute. -----------------
  std::printf("== 2. CorruptionPolicy: what happens to NaR/Inf codes ==\n\n");
  for (const auto policy : {formats::CorruptionPolicy::kPropagate,
                            formats::CorruptionPolicy::kZeroSubstitute}) {
    formats::CorruptionStats stats;
    ptq::unpack_weights(*model, artifact, *afmt, policy, &stats);
    const float acc = ptq::evaluate_fp32(*model, test, ptq::Metric::kAccuracy);
    std::printf("%-16s: %llu non-finite codes hit, %lld non-finite weights "
                "in the net, accuracy %.2f%%\n",
                policy == formats::CorruptionPolicy::kPropagate
                    ? "propagate" : "zero-substitute",
                static_cast<unsigned long long>(stats.non_finite),
                static_cast<long long>(nn::count_nonfinite_params(*model)), acc);
  }
  ptq::restore_weights(*model, fp32);
  std::printf("\n(zero-substitution trades each corrupted weight for 0.0 and "
              "counts it; propagation lets NaN/Inf poison the activations.)\n\n");

  // --- 3. A stuck-at fault on the MAC accumulator. -------------------------
  std::printf("== 3. Gate-level injection on the %s MAC ==\n\n",
              fmt->name().c_str());
  const auto* ef = dynamic_cast<const formats::ExponentCodedFormat*>(fmt.get());
  if (ef == nullptr) {
    std::fprintf(stderr, "%s has no hardware MAC\n", fmt->name().c_str());
    return 1;
  }
  rtl::Netlist nl;
  const hw::MacPorts mac = hw::build_mac(nl, *fmt);

  // Fixed operand stream, same for the golden and both faulty runs.
  const int cycles = 12;
  std::mt19937 oprng(11);
  std::normal_distribution<double> dist(0.0, 0.8);
  std::vector<std::uint8_t> wc(cycles), ac(cycles);
  for (int i = 0; i < cycles; ++i) {
    wc[i] = fmt->encode(dist(oprng));
    ac[i] = fmt->encode(dist(oprng));
  }

  // Golden run: record the fault-free accumulator and special-flag traces,
  // verifying the netlist against the bit-exact reference as we go.
  std::vector<std::int64_t> gold_acc(cycles);
  std::vector<bool> gold_flag(cycles);
  {
    rtl::Simulator sim(nl);
    hw::MacReference ref(*ef);
    for (int i = 0; i < cycles; ++i) {
      sim.set_input_bus(mac.wdec.code, wc[i]);
      sim.set_input_bus(mac.adec.code, ac[i]);
      sim.eval();
      gold_flag[static_cast<std::size_t>(i)] = sim.get(mac.special_any);
      sim.clock();
      ref.accumulate(wc[i], ac[i]);
      gold_acc[static_cast<std::size_t>(i)] = sim.get_bus_signed(mac.acc);
      if (gold_acc[static_cast<std::size_t>(i)] != ref.acc_raw()) {
        std::fprintf(stderr, "golden netlist deviates from reference!\n");
        return 1;
      }
    }
  }
  std::printf("%-34s acc=%12lld  (matches hw::MacReference)\n", "fault-free",
              static_cast<long long>(gold_acc[static_cast<std::size_t>(cycles - 1)]));

  auto run = [&](const rtl::FaultPlan& plan, const char* label) {
    rtl::Simulator sim(nl);
    sim.set_fault_plan(plan);
    bool corrupted = false, flag_deviated = false;
    for (int i = 0; i < cycles; ++i) {
      sim.set_input_bus(mac.wdec.code, wc[i]);
      sim.set_input_bus(mac.adec.code, ac[i]);
      sim.eval();
      if (sim.get(mac.special_any) != gold_flag[static_cast<std::size_t>(i)])
        flag_deviated = true;
      sim.clock();
      if (sim.get_bus_signed(mac.acc) != gold_acc[static_cast<std::size_t>(i)])
        corrupted = true;
    }
    const char* verdict = (!corrupted && !flag_deviated) ? "masked"
                          : flag_deviated ? "detected (special flag deviated)"
                                          : "SDC (silent data corruption)";
    std::printf("%-34s acc=%12lld  -> %s\n", label,
                static_cast<long long>(sim.get_bus_signed(mac.acc)), verdict);
  };

  rtl::FaultPlan stuck;
  stuck.stuck.push_back({mac.acc[0], true});  // accumulator LSB stuck at 1
  run(stuck, "stuck-at-1 on accumulator LSB");

  rtl::FaultPlan seu;
  seu.transients.push_back({/*cycle=*/5, mac.wdec.is_special});
  run(seu, "SEU on is_special at cycle 5");

  std::printf("\nFull campaigns over sampled fault sites:\n");
  fault::GateCampaignConfig gcfg;
  gcfg.max_sites = 64;
  const fault::StuckAtReport report = fault::run_stuckat_campaign(*fmt, gcfg);
  std::printf("  %s stuck-at: %llu trials -> %llu masked, %llu detected, "
              "%llu SDC (%.1f%% SDC rate)\n", report.format_name.c_str(),
              static_cast<unsigned long long>(report.trials),
              static_cast<unsigned long long>(report.masked),
              static_cast<unsigned long long>(report.detected),
              static_cast<unsigned long long>(report.sdc),
              100.0 * report.sdc_rate());
  return 0;
}
