// Format explorer: dump every representable value of any 8-bit format, or
// compare quantization error across formats on a chosen distribution.
//
//   ./format_explorer MERSIT(8,2)          # dump the value table
//   ./format_explorer MERSIT(8,2) gauss    # RMSE on gaussian data
//   ./format_explorer list                 # list known formats
#include <cstdio>
#include <cstring>
#include <random>
#include <vector>

#include "core/registry.h"
#include "formats/quantize.h"

using namespace mersit;

namespace {

void dump_values(const formats::Format& fmt) {
  std::printf("%s: %zu finite positive values, minpos %.3e, max %.6g\n\n",
              fmt.name().c_str(), fmt.codec().cardinality(), fmt.min_positive(),
              fmt.max_finite());
  std::printf("%6s %10s  %s\n", "code", "value", "(ascending positive values)");
  for (const auto& e : fmt.codec().positives())
    std::printf("  0x%02X %12.6g\n", e.code, e.value);
}

void rmse_comparison(const std::string& dist_name) {
  std::mt19937 rng(17);
  std::vector<float> data(65536);
  float absmax = 0.f;
  for (auto& v : data) {
    if (dist_name == "uniform") {
      v = std::uniform_real_distribution<float>(-1.f, 1.f)(rng);
    } else if (dist_name == "lognormal") {
      v = std::lognormal_distribution<float>(0.f, 1.5f)(rng) *
          ((rng() & 1) ? 1.f : -1.f);
    } else {
      v = std::normal_distribution<float>(0.f, 1.f)(rng);
    }
    absmax = std::max(absmax, std::fabs(v));
  }
  std::printf("Quantization RMSE on %s data (max-calibrated, %zu samples)\n\n",
              dist_name.c_str(), data.size());
  std::printf("%-14s %12s\n", "Format", "RMSE");
  for (const auto& fmt : core::table2_formats()) {
    const double scale = formats::scale_for_absmax(*fmt, absmax);
    std::printf("%-14s %12.6f\n", fmt->name().c_str(),
                formats::quantization_rmse(data, *fmt, scale));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "list") == 0) {
    std::printf("Known formats:\n");
    for (const auto& fmt : core::table2_formats())
      std::printf("  %s\n", fmt->name().c_str());
    std::printf("  StdPosit(8,0..3)\n");
    std::printf("\nUsage: %s <format> [gauss|uniform|lognormal]\n",
                argc > 0 ? argv[0] : "format_explorer");
    return argc < 2 ? 1 : 0;
  }
  try {
    const auto fmt = core::make_format(argv[1]);
    if (argc >= 3) {
      rmse_comparison(argv[2]);
    } else {
      dump_values(*fmt);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
