// Quickstart: encode/decode MERSIT values, inspect fields, compare formats.
//
//   ./quickstart
#include <cstdio>

#include "core/mersit.h"
#include "core/registry.h"
#include "formats/quantize.h"

using namespace mersit;

int main() {
  const core::MersitFormat& m82 = core::mersit_8_2();

  // 1. Encode a real number into MERSIT(8,2) and look at the fields.
  const double x = 3.14159;
  const std::uint8_t code = m82.encode(x);
  const core::MersitFormat::Fields f = m82.fields(code);
  std::printf("MERSIT(8,2) encode(%.5f) = 0x%02X\n", x, code);
  std::printf("  sign=%d ks=%d g=%d k=%d exp=%d frac=0x%X (%d bits)\n", f.sign,
              f.ks, f.g, f.k, f.exp, f.frac, f.frac_bits);
  std::printf("  value = %.6f (quantization error %.2e)\n\n", m82.decode_value(code),
              m82.decode_value(code) - x);

  // 2. Round-trip a few values through every format in the paper.
  std::printf("%-12s", "value");
  for (const auto& fmt : core::headline_formats())
    std::printf(" %12s", fmt->name().c_str());
  std::printf("\n");
  for (const double v : {0.001, 0.1, 1.0, 7.3, 100.0, 900.0}) {
    std::printf("%-12g", v);
    for (const auto& fmt : core::headline_formats())
      std::printf(" %12.5f", fmt->quantize(v));
    std::printf("\n");
  }

  // 3. Special values: MERSIT neither underflows nor overflows.
  std::printf("\nMERSIT(8,2): min positive %.3e, max finite %.1f\n",
              m82.min_positive(), m82.max_finite());
  std::printf("quantize(1e-30) = %.3e (clamps to minpos, Posit semantics)\n",
              m82.quantize(1e-30));
  std::printf("quantize(1e+30) = %.1f (saturates, never inf)\n", m82.quantize(1e30));

  // 4. Scaled fake-quantization as the PTQ pipeline uses it.
  const auto fmt = core::make_format("MERSIT(8,2)");
  const double absmax = 37.4;  // e.g. a calibration maximum
  const double scale = formats::scale_for_absmax(*fmt, absmax);
  std::printf("\nPTQ-style: absmax %.1f -> scale %.4f, fake_quantize(12.7) = %.4f\n",
              absmax, scale, formats::fake_quantize_value(12.7, *fmt, scale));
  return 0;
}
